#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "util/random.hpp"

namespace {

using ht::la::Matrix;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

// || Q^T Q - I ||_max
double orthonormality_error(const Matrix& q) {
  const Matrix g = ht::la::gemm_tn(q, q);
  double err = 0;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      err = std::max(err, std::abs(g(i, j) - (i == j ? 1.0 : 0.0)));
    }
  }
  return err;
}

// ---------------------------------------------------------------- QR

class QrShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapes, ReconstructsAndOrthogonal) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 1000 + m * 31 + n);
  const auto [q, r] = ht::la::qr_thin(a);
  EXPECT_EQ(q.rows(), static_cast<std::size_t>(m));
  EXPECT_EQ(q.cols(), static_cast<std::size_t>(n));
  EXPECT_LT(orthonormality_error(q), 1e-10);
  const Matrix qr = ht::la::gemm(q, r);
  EXPECT_TRUE(qr.approx_equal(a, 1e-10));
  // R upper triangular
  for (std::size_t i = 0; i < r.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) EXPECT_NEAR(r(i, j), 0.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 5},
                                           std::pair{10, 3}, std::pair{40, 7},
                                           std::pair{100, 20},
                                           std::pair{64, 64}));

TEST(QrTest, RequiresTallMatrix) {
  EXPECT_THROW(ht::la::qr_thin(Matrix(2, 3)), ht::Error);
}

TEST(OrthonormalizeTest, ProducesOrthonormalColumns) {
  Matrix a = random_matrix(30, 6, 2);
  ht::la::orthonormalize_columns(a);
  EXPECT_LT(orthonormality_error(a), 1e-10);
}

TEST(OrthonormalizeTest, HandlesRankDeficiency) {
  Matrix a(10, 3);
  ht::Rng rng(3);
  for (std::size_t i = 0; i < 10; ++i) {
    const double v = rng.uniform();
    a(i, 0) = v;
    a(i, 1) = 2 * v;  // dependent column
    a(i, 2) = rng.uniform();
  }
  ht::la::orthonormalize_columns(a);
  EXPECT_LT(orthonormality_error(a), 1e-8);
}

TEST(OrthonormalizeTest, ZeroMatrixCompletesToBasis) {
  Matrix a(5, 3);  // all zeros
  ht::la::orthonormalize_columns(a);
  EXPECT_LT(orthonormality_error(a), 1e-10);
}

// ---------------------------------------------------------------- SVD

class SvdShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapes, ReconstructsInput) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 5000 + m * 17 + n);
  const auto svd = ht::la::svd_jacobi(a);
  const std::size_t k = std::min(m, n);
  ASSERT_EQ(svd.s.size(), k);
  // Singular values descending and non-negative.
  for (std::size_t i = 0; i + 1 < k; ++i) EXPECT_GE(svd.s[i], svd.s[i + 1]);
  EXPECT_GE(svd.s[k - 1], 0.0);
  // U, V orthonormal.
  EXPECT_LT(orthonormality_error(svd.u), 1e-9);
  EXPECT_LT(orthonormality_error(svd.v), 1e-9);
  // A == U S V^T
  Matrix us = svd.u;
  for (std::size_t i = 0; i < us.rows(); ++i) {
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= svd.s[j];
  }
  const Matrix rec = ht::la::gemm_nt(us, svd.v);
  EXPECT_TRUE(rec.approx_equal(a, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{4, 4},
                                           std::pair{12, 5}, std::pair{5, 12},
                                           std::pair{60, 10},
                                           std::pair{33, 33}));

TEST(SvdTest, KnownDiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = 1;
  a(2, 2) = 2;
  const auto svd = ht::la::svd_jacobi(a);
  EXPECT_NEAR(svd.s[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.s[1], 2.0, 1e-12);
  EXPECT_NEAR(svd.s[2], 1.0, 1e-12);
}

TEST(SvdTest, RankDeficientMatrixHasZeroSingularValues) {
  Matrix a(6, 3);
  ht::Rng rng(17);
  for (std::size_t i = 0; i < 6; ++i) {
    const double v = rng.uniform();
    a(i, 0) = v;
    a(i, 1) = 3 * v;
    a(i, 2) = -v;
  }
  const auto svd = ht::la::svd_jacobi(a);
  EXPECT_GT(svd.s[0], 0.1);
  EXPECT_NEAR(svd.s[1], 0.0, 1e-10);
  EXPECT_NEAR(svd.s[2], 0.0, 1e-10);
}

TEST(SvdTest, TruncatedMatchesLeadingColumns) {
  const Matrix a = random_matrix(20, 8, 21);
  const auto full = ht::la::svd_jacobi(a);
  const auto trunc = ht::la::svd_truncated_dense(a, 3);
  ASSERT_EQ(trunc.s.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(trunc.s[j], full.s[j], 1e-10);
    // Columns match up to sign.
    double dot = 0;
    for (std::size_t i = 0; i < 20; ++i) dot += trunc.u(i, j) * full.u(i, j);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-9);
  }
}

TEST(SvdTest, TruncatedRejectsBadRank) {
  const Matrix a = random_matrix(5, 4, 22);
  EXPECT_THROW(ht::la::svd_truncated_dense(a, 0), ht::Error);
  EXPECT_THROW(ht::la::svd_truncated_dense(a, 5), ht::Error);
}

// ---------------------------------------------------------------- Eig

TEST(EigTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = -1;
  a(1, 1) = 5;
  a(2, 2) = 2;
  const auto eig = ht::la::eig_sym_jacobi(a);
  EXPECT_NEAR(eig.w[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.w[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.w[2], -1.0, 1e-12);
}

TEST(EigTest, ReconstructsSymmetricMatrix) {
  const Matrix b = random_matrix(12, 12, 31);
  const Matrix a = ht::la::gemm_tn(b, b);  // SPD
  const auto eig = ht::la::eig_sym_jacobi(a);
  EXPECT_LT(orthonormality_error(eig.v), 1e-9);
  // A == V W V^T
  Matrix vw = eig.v;
  for (std::size_t i = 0; i < vw.rows(); ++i) {
    for (std::size_t j = 0; j < vw.cols(); ++j) vw(i, j) *= eig.w[j];
  }
  const Matrix rec = ht::la::gemm_nt(vw, eig.v);
  EXPECT_TRUE(rec.approx_equal(a, 1e-8));
  for (double w : eig.w) EXPECT_GE(w, -1e-10);  // PSD
}

TEST(EigTest, RequiresSquare) {
  EXPECT_THROW(ht::la::eig_sym_jacobi(Matrix(2, 3)), ht::Error);
}

TEST(EigTest, EigenvaluesMatchSquaredSingularValues) {
  const Matrix a = random_matrix(15, 6, 32);
  const auto svd = ht::la::svd_jacobi(a);
  const Matrix gram = ht::la::gemm_tn(a, a);
  const auto eig = ht::la::eig_sym_jacobi(gram);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(eig.w[i], svd.s[i] * svd.s[i], 1e-9);
  }
}

}  // namespace
