#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "smp/communicator.hpp"

namespace {

using ht::smp::Communicator;

TEST(SmpTest, SingleRankRuns) {
  int visits = 0;
  ht::smp::run_spmd(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(SmpTest, AllRanksRun) {
  std::atomic<int> visits{0};
  ht::smp::run_spmd(7, [&](Communicator&) { ++visits; });
  EXPECT_EQ(visits.load(), 7);
}

TEST(SmpTest, PointToPointRoundTrip) {
  ht::smp::run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> payload = {1.0, 2.5, -3.0};
      comm.send<double>(1, /*tag=*/7, payload);
      const auto echoed = comm.recv<double>(1, 8);
      ASSERT_EQ(echoed.size(), 3u);
      EXPECT_DOUBLE_EQ(echoed[1], 2.5);
    } else {
      const auto got = comm.recv<double>(0, 7);
      comm.send<double>(0, 8, got);
    }
  });
}

TEST(SmpTest, MessagesArePerTagFifo) {
  ht::smp::run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (double v : {1.0, 2.0, 3.0}) {
        const std::vector<double> m = {v};
        comm.send<double>(1, 1, m);
      }
      const std::vector<double> other = {99.0};
      comm.send<double>(1, 2, other);
    } else {
      // Tag-2 message is retrievable before draining tag-1 queue.
      EXPECT_DOUBLE_EQ(comm.recv<double>(0, 2)[0], 99.0);
      for (double v : {1.0, 2.0, 3.0}) {
        EXPECT_DOUBLE_EQ(comm.recv<double>(0, 1)[0], v);
      }
    }
  });
}

TEST(SmpTest, SelfSendWorks) {
  ht::smp::run_spmd(3, [](Communicator& comm) {
    const std::vector<double> m = {static_cast<double>(comm.rank())};
    comm.send<double>(comm.rank(), 5, m);
    EXPECT_DOUBLE_EQ(comm.recv<double>(comm.rank(), 5)[0], comm.rank());
  });
}

class SmpCollectives : public ::testing::TestWithParam<int> {};

TEST_P(SmpCollectives, AllreduceSum) {
  const int p = GetParam();
  ht::smp::run_spmd(p, [p](Communicator& comm) {
    std::vector<double> v = {1.0, static_cast<double>(comm.rank())};
    comm.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], p);
    EXPECT_DOUBLE_EQ(v[1], p * (p - 1) / 2.0);
  });
}

TEST_P(SmpCollectives, AllreduceScalars) {
  const int p = GetParam();
  ht::smp::run_spmd(p, [p](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank())),
                     p - 1);
    EXPECT_EQ(comm.allreduce_max_u64(100 - comm.rank()), 100u);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum_scalar(1.5), 1.5 * p);
  });
}

TEST_P(SmpCollectives, Allgatherv) {
  const int p = GetParam();
  ht::smp::run_spmd(p, [p](Communicator& comm) {
    // Rank r contributes r+1 copies of r.
    std::vector<double> local(comm.rank() + 1, comm.rank());
    const auto all = comm.allgatherv(local);
    std::size_t expected_size = 0;
    for (int r = 0; r < p; ++r) expected_size += r + 1;
    ASSERT_EQ(all.size(), expected_size);
    std::size_t at = 0;
    for (int r = 0; r < p; ++r) {
      for (int k = 0; k <= r; ++k) EXPECT_DOUBLE_EQ(all[at++], r);
    }
  });
}

TEST_P(SmpCollectives, Alltoallv) {
  const int p = GetParam();
  ht::smp::run_spmd(p, [p](Communicator& comm) {
    std::vector<std::vector<double>> send(p);
    for (int r = 0; r < p; ++r) {
      send[r] = {static_cast<double>(comm.rank() * 100 + r)};
    }
    const auto recv = comm.alltoallv(send);
    ASSERT_EQ(static_cast<int>(recv.size()), p);
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(recv[r].size(), 1u);
      EXPECT_DOUBLE_EQ(recv[r][0], r * 100 + comm.rank());
    }
  });
}

TEST_P(SmpCollectives, Bcast) {
  const int p = GetParam();
  ht::smp::run_spmd(p, [](Communicator& comm) {
    std::vector<double> data;
    if (comm.rank() == 0) data = {3.0, 1.0, 4.0};
    comm.bcast(data, 0);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_DOUBLE_EQ(data[2], 4.0);
  });
}

TEST_P(SmpCollectives, BarrierOrdersPhases) {
  const int p = GetParam();
  std::atomic<int> phase1{0};
  ht::smp::run_spmd(p, [&](Communicator& comm) {
    ++phase1;
    comm.barrier();
    EXPECT_EQ(phase1.load(), p);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SmpCollectives,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(SmpTest, AllreduceIsBitIdenticalAcrossRanks) {
  // Rank-order reduction must give identical bits everywhere.
  const int p = 6;
  std::vector<std::vector<double>> results(p);
  ht::smp::run_spmd(p, [&](Communicator& comm) {
    std::vector<double> v(64);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 1e-15 * (comm.rank() + 1) + i * 0.1;
    }
    comm.allreduce_sum(v);
    results[comm.rank()] = v;
  });
  for (int r = 1; r < p; ++r) {
    ASSERT_EQ(results[r].size(), results[0].size());
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      EXPECT_EQ(results[r][i], results[0][i]);  // exact comparison
    }
  }
}

TEST(SmpTest, StatsCountPointToPointBytes) {
  ht::smp::run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> m(10, 1.0);
      comm.send<double>(1, 1, m);
      EXPECT_EQ(comm.stats().bytes_sent, 80u);
      EXPECT_EQ(comm.stats().messages_sent, 1u);
    } else {
      comm.recv<double>(0, 1);
      EXPECT_EQ(comm.stats().bytes_received, 80u);
    }
    comm.barrier();
  });
}

TEST(SmpTest, StatsResetAndDelta) {
  ht::smp::run_spmd(2, [](Communicator& comm) {
    std::vector<double> v = {1.0};
    comm.allreduce_sum(v);
    const auto snapshot = comm.stats();
    comm.allreduce_sum(v);
    const auto delta = comm.stats() - snapshot;
    EXPECT_EQ(delta.bytes_sent, snapshot.bytes_sent);
    comm.reset_stats();
    EXPECT_EQ(comm.stats().bytes_sent, 0u);
  });
}

TEST(SmpTest, SingleRankCollectivesMoveNoBytes) {
  ht::smp::run_spmd(1, [](Communicator& comm) {
    std::vector<double> v = {5.0};
    comm.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], 5.0);
    const auto all = comm.allgatherv(v);
    EXPECT_EQ(all.size(), 1u);
    EXPECT_EQ(comm.stats().bytes_sent, 0u);
    EXPECT_EQ(comm.stats().bytes_received, 0u);
  });
}

TEST(SmpTest, ExceptionInOneRankPropagatesWithoutDeadlock) {
  EXPECT_THROW(ht::smp::run_spmd(4,
                                 [](Communicator& comm) {
                                   if (comm.rank() == 2) {
                                     throw ht::InvalidArgument("rank 2 died");
                                   }
                                   // Other ranks block forever without abort.
                                   comm.recv<double>(3, 99);
                                 }),
               ht::InvalidArgument);
}

TEST(SmpTest, InvalidWorldSizeThrows) {
  EXPECT_THROW(ht::smp::run_spmd(0, [](Communicator&) {}), ht::Error);
}

TEST(SmpTest, InvalidPeerThrows) {
  EXPECT_THROW(ht::smp::run_spmd(2,
                                 [](Communicator& comm) {
                                   std::vector<double> m = {1.0};
                                   comm.send<double>(5, 0, m);
                                 }),
               ht::Error);
}

TEST(SmpTest, ManyRanksStress) {
  // 16 ranks exchanging in a ring, several rounds.
  ht::smp::run_spmd(16, [](Communicator& comm) {
    const int p = comm.size();
    double token = comm.rank();
    for (int round = 0; round < 5; ++round) {
      const std::vector<double> m = {token};
      comm.send<double>((comm.rank() + 1) % p, round, m);
      token = comm.recv<double>((comm.rank() + p - 1) % p, round)[0] + 1.0;
    }
    // Each round adds 1 and shifts by one rank.
    const double expected = (comm.rank() + p - 5) % p + 5.0;
    EXPECT_DOUBLE_EQ(token, expected);
  });
}

}  // namespace
