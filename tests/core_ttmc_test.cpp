#include <gtest/gtest.h>

#include <vector>

#include "core/symbolic.hpp"
#include "core/ttmc.hpp"
#include "la/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::SymbolicTtmc;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::DenseTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

std::vector<Matrix> random_factors(const Shape& shape,
                                   const std::vector<index_t>& ranks,
                                   std::uint64_t seed) {
  std::vector<Matrix> f;
  for (std::size_t n = 0; n < shape.size(); ++n) {
    f.push_back(random_matrix(shape[n], ranks[n], seed + n));
  }
  return f;
}

// Reference: dense TTMc + matricization, compacted to the symbolic rows.
Matrix reference_compact_y(const CooTensor& x, const std::vector<Matrix>& f,
                           std::size_t mode,
                           const ht::core::ModeSymbolic& sym) {
  const DenseTensor dense = DenseTensor::from_coo(x);
  const DenseTensor y = ht::tensor::dense_ttmc_except(dense, mode, f);
  const Matrix yn = y.matricize(mode);
  Matrix compact(sym.num_rows(), yn.cols());
  for (std::size_t r = 0; r < sym.num_rows(); ++r) {
    for (std::size_t c = 0; c < yn.cols(); ++c) {
      compact(r, c) = yn(sym.rows[r], c);
    }
  }
  return compact;
}

struct TtmcCase {
  Shape shape;
  std::vector<index_t> ranks;
  ht::tensor::nnz_t nnz;
};

class TtmcVsDense : public ::testing::TestWithParam<TtmcCase> {};

TEST_P(TtmcVsDense, MatchesBruteForce) {
  const auto& [shape, ranks, nnz] = GetParam();
  const CooTensor x = ht::tensor::random_uniform(shape, nnz, 17);
  const auto factors = random_factors(shape, ranks, 23);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);

  for (std::size_t mode = 0; mode < shape.size(); ++mode) {
    Matrix y;
    ht::core::ttmc_mode(x, factors, mode, sym.modes[mode], y);
    const Matrix ref = reference_compact_y(x, factors, mode, sym.modes[mode]);
    ASSERT_EQ(y.rows(), ref.rows()) << "mode " << mode;
    ASSERT_EQ(y.cols(), ref.cols()) << "mode " << mode;
    EXPECT_TRUE(y.approx_equal(ref, 1e-10)) << "mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TtmcVsDense,
    ::testing::Values(
        TtmcCase{{6, 7, 8}, {2, 3, 4}, 60},
        TtmcCase{{6, 7, 8}, {6, 7, 8}, 100},   // full ranks
        TtmcCase{{12, 4, 9}, {3, 2, 2}, 150},
        TtmcCase{{5, 6, 7, 8}, {2, 2, 3, 2}, 120},  // 4-mode
        TtmcCase{{4, 4, 4, 4}, {4, 4, 4, 4}, 64},
        TtmcCase{{3, 4, 5, 2, 3}, {2, 2, 2, 2, 2}, 80},  // 5-mode general path
        TtmcCase{{30, 3, 3}, {1, 1, 1}, 40}));  // rank-1 edge

TEST(TtmcTest, RowWidth) {
  const auto factors = random_factors({5, 6, 7}, {2, 3, 4}, 1);
  EXPECT_EQ(ht::core::ttmc_row_width(factors, 0), 12u);
  EXPECT_EQ(ht::core::ttmc_row_width(factors, 1), 8u);
  EXPECT_EQ(ht::core::ttmc_row_width(factors, 2), 6u);
}

TEST(TtmcTest, StaticAndDynamicSchedulesAgree) {
  const CooTensor x = ht::tensor::random_zipf(Shape{50, 40, 30}, 2000,
                                              {1.0, 0.5, 0.0}, 29);
  const auto factors = random_factors(x.shape(), {4, 4, 4}, 31);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  Matrix yd, ys;
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], yd,
                      {ht::core::Schedule::kDynamic});
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], ys,
                      {ht::core::Schedule::kStatic});
  EXPECT_TRUE(yd.approx_equal(ys, 0.0));  // identical row sums, exact match
}

TEST(TtmcTest, AccumulateKronSingleNonzero) {
  CooTensor x(Shape{3, 4, 5});
  x.push_back(std::vector<index_t>{1, 2, 3}, 2.0);
  const auto factors = random_factors(x.shape(), {2, 2, 2}, 37);
  std::vector<double> out(4, 0.0);
  ht::core::accumulate_kron(x, 0, factors, 0, out);
  // out[j*2+k] = 2 * U1(2,j) * U2(3,k)
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_NEAR(out[j * 2 + k], 2.0 * factors[1](2, j) * factors[2](3, k),
                  1e-14);
    }
  }
}

TEST(TtmcTest, AccumulateKronIsAdditive) {
  const CooTensor x = ht::tensor::random_uniform(Shape{6, 6, 6, 6}, 50, 41);
  const auto factors = random_factors(x.shape(), {2, 3, 2, 2}, 43);
  // Accumulating all nonzeros with mode-0 index i must equal the ttmc row.
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  Matrix y;
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y);
  for (std::size_t r = 0; r < sym.modes[0].num_rows(); ++r) {
    std::vector<double> acc(y.cols(), 0.0);
    for (auto e : sym.modes[0].update_list(r)) {
      ht::core::accumulate_kron(x, e, factors, 0, acc);
    }
    for (std::size_t c = 0; c < y.cols(); ++c) {
      EXPECT_NEAR(acc[c], y(r, c), 1e-12);
    }
  }
}

TEST(TtmcTest, MismatchedFactorsThrow) {
  const CooTensor x = ht::tensor::random_uniform(Shape{5, 5, 5}, 20, 47);
  auto factors = random_factors(x.shape(), {2, 2, 2}, 49);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  Matrix y;
  factors[1] = random_matrix(4, 2, 51);  // wrong row count
  EXPECT_THROW(ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y), ht::Error);
}

TEST(TtmcTest, ReusedOutputBufferIsReset) {
  const CooTensor x = ht::tensor::random_uniform(Shape{8, 8, 8}, 100, 53);
  const auto factors = random_factors(x.shape(), {3, 3, 3}, 55);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  Matrix y;
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y);
  const Matrix first = y;
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y);  // reuse buffer
  EXPECT_TRUE(y.approx_equal(first, 0.0));
}

}  // namespace
