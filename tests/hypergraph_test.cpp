#include <gtest/gtest.h>

#include <numeric>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/models.hpp"
#include "hypergraph/partition.hpp"
#include "hypergraph/partitioner.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::hypergraph::Hypergraph;
using ht::hypergraph::Partition;
using ht::hypergraph::PartitionerOptions;
using ht::hypergraph::vid_t;
using ht::hypergraph::weight_t;

Hypergraph tiny() {
  // 4 vertices; nets {0,1}, {1,2,3}, {0,3}
  return Hypergraph::build(4, {{0, 1}, {1, 2, 3}, {0, 3}});
}

TEST(HypergraphTest, BuildAndAccess) {
  const Hypergraph h = tiny();
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_nets(), 3u);
  EXPECT_EQ(h.num_pins(), 7u);
  ASSERT_EQ(h.net_pins(1).size(), 3u);
  EXPECT_EQ(h.net_pins(1)[0], 1u);
  // Vertex 3 belongs to nets 1 and 2.
  const auto nets3 = h.vertex_nets(3);
  ASSERT_EQ(nets3.size(), 2u);
  EXPECT_EQ(nets3[0], 1u);
  EXPECT_EQ(nets3[1], 2u);
  EXPECT_EQ(h.total_vertex_weight(), 4);
}

TEST(HypergraphTest, CustomWeightsAndCosts) {
  const Hypergraph h =
      Hypergraph::build(3, {{0, 1}, {1, 2}}, {5, 1, 2}, {10, 20});
  EXPECT_EQ(h.vertex_weight(0), 5);
  EXPECT_EQ(h.net_cost(1), 20);
  EXPECT_EQ(h.total_vertex_weight(), 8);
}

TEST(HypergraphTest, RejectsBadPins) {
  EXPECT_THROW(Hypergraph::build(2, {{0, 5}}), ht::Error);
}

TEST(PartitionMetricsTest, ConnectivityCutsize) {
  const Hypergraph h = tiny();
  Partition p{2, {0, 0, 1, 1}};
  // net0 {0,1}: lambda 1. net1 {1,2,3}: lambda 2 -> +1. net2 {0,3}: +1.
  EXPECT_EQ(ht::hypergraph::connectivity_cutsize(h, p), 2);
  EXPECT_EQ(ht::hypergraph::cutnet_cutsize(h, p), 2);
}

TEST(PartitionMetricsTest, LambdaMinusOneExceedsCutNetForWideSpread) {
  const Hypergraph h = Hypergraph::build(3, {{0, 1, 2}});
  Partition p{3, {0, 1, 2}};
  EXPECT_EQ(ht::hypergraph::connectivity_cutsize(h, p), 2);  // lambda-1 = 2
  EXPECT_EQ(ht::hypergraph::cutnet_cutsize(h, p), 1);
}

TEST(PartitionMetricsTest, WeightsAndImbalance) {
  const Hypergraph h = Hypergraph::build(4, {}, {1, 2, 3, 4});
  Partition p{2, {0, 0, 1, 1}};
  const auto w = ht::hypergraph::part_weights(h, p);
  EXPECT_EQ(w[0], 3);
  EXPECT_EQ(w[1], 7);
  EXPECT_NEAR(ht::hypergraph::imbalance(h, p), 7.0 / 5.0 - 1.0, 1e-12);
}

TEST(PartitionMetricsTest, ValidateCatchesBadAssignments) {
  const Hypergraph h = tiny();
  Partition bad{2, {0, 0, 2, 1}};
  EXPECT_THROW(ht::hypergraph::validate_partition(h, bad), ht::Error);
  Partition short_p{2, {0, 0}};
  EXPECT_THROW(ht::hypergraph::validate_partition(h, short_p), ht::Error);
}

// ---------------------------------------------------------------- partitioners

Hypergraph random_hypergraph(std::size_t nv, std::size_t nn,
                             std::size_t pins_per_net, std::uint64_t seed) {
  ht::Rng rng(seed);
  std::vector<std::vector<vid_t>> nets(nn);
  for (auto& net : nets) {
    for (std::size_t k = 0; k < pins_per_net; ++k) {
      net.push_back(static_cast<vid_t>(rng.below(nv)));
    }
    std::sort(net.begin(), net.end());
    net.erase(std::unique(net.begin(), net.end()), net.end());
  }
  return Hypergraph::build(nv, nets);
}

// Two well-separated clusters joined by a single bridge net: the partitioner
// must find the obvious bisection.
Hypergraph two_clusters(std::size_t half, std::uint64_t seed) {
  ht::Rng rng(seed);
  std::vector<std::vector<vid_t>> nets;
  for (std::size_t c = 0; c < 2; ++c) {
    const vid_t base = static_cast<vid_t>(c * half);
    for (std::size_t n = 0; n < half * 3; ++n) {
      std::vector<vid_t> net;
      for (int k = 0; k < 4; ++k) {
        net.push_back(base + static_cast<vid_t>(rng.below(half)));
      }
      std::sort(net.begin(), net.end());
      net.erase(std::unique(net.begin(), net.end()), net.end());
      if (net.size() >= 2) nets.push_back(net);
    }
  }
  nets.push_back({0, static_cast<vid_t>(half)});  // bridge
  return Hypergraph::build(2 * half, nets);
}

class PartitionerParts : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerParts, RespectsBalanceAndBeatsRandom) {
  const int k = GetParam();
  const Hypergraph h = random_hypergraph(2000, 3000, 5, 77);
  PartitionerOptions opt;
  opt.num_parts = k;
  opt.epsilon = 0.10;
  const Partition hp = ht::hypergraph::partition_multilevel(h, opt);
  ht::hypergraph::validate_partition(h, hp);
  EXPECT_LE(ht::hypergraph::imbalance(h, hp), 0.12 + 1e-9);

  const Partition rd = ht::hypergraph::partition_random(h, k, 7);
  ht::hypergraph::validate_partition(h, rd);
  const auto cut_hp = ht::hypergraph::connectivity_cutsize(h, hp);
  const auto cut_rd = ht::hypergraph::connectivity_cutsize(h, rd);
  EXPECT_LT(cut_hp, cut_rd) << "multilevel should beat random placement";
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionerParts,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(PartitionerTest, FindsPlantedBisection) {
  const Hypergraph h = two_clusters(300, 5);
  PartitionerOptions opt;
  opt.num_parts = 2;
  const Partition p = ht::hypergraph::partition_multilevel(h, opt);
  // Only the bridge net should be cut.
  EXPECT_LE(ht::hypergraph::connectivity_cutsize(h, p), 3);
  // Clusters end up (almost) whole on each side.
  int cross = 0;
  for (std::size_t v = 0; v < 300; ++v) {
    cross += (p.part_of[v] != p.part_of[0]);
  }
  EXPECT_LE(cross, 6);
}

TEST(PartitionerTest, SinglePartIsTrivial) {
  const Hypergraph h = tiny();
  PartitionerOptions opt;
  opt.num_parts = 1;
  const Partition p = ht::hypergraph::partition_multilevel(h, opt);
  for (int part : p.part_of) EXPECT_EQ(part, 0);
  EXPECT_EQ(ht::hypergraph::connectivity_cutsize(h, p), 0);
}

TEST(PartitionerTest, MorePartsThanVerticesStillValid) {
  const Hypergraph h = tiny();
  PartitionerOptions opt;
  opt.num_parts = 9;
  const Partition p = ht::hypergraph::partition_multilevel(h, opt);
  ht::hypergraph::validate_partition(h, p);
}

TEST(PartitionerTest, DeterministicForSeed) {
  const Hypergraph h = random_hypergraph(500, 800, 4, 9);
  PartitionerOptions opt;
  opt.num_parts = 4;
  opt.seed = 11;
  const Partition a = ht::hypergraph::partition_multilevel(h, opt);
  const Partition b = ht::hypergraph::partition_multilevel(h, opt);
  EXPECT_EQ(a.part_of, b.part_of);
}

TEST(PartitionerTest, RandomPartitionIsBalanced) {
  const Hypergraph h = random_hypergraph(1000, 10, 3, 13);
  const Partition p = ht::hypergraph::partition_random(h, 8, 3);
  ht::hypergraph::validate_partition(h, p);
  EXPECT_LE(ht::hypergraph::imbalance(h, p), 0.05);
}

TEST(PartitionerTest, BlockPartitionIsContiguousAndBalanced) {
  std::vector<weight_t> weights(100);
  ht::Rng rng(15);
  for (auto& w : weights) w = 1 + static_cast<weight_t>(rng.below(5));
  const Partition p = ht::hypergraph::partition_block(weights, 4);
  // Contiguity: part ids are non-decreasing.
  for (std::size_t v = 1; v < weights.size(); ++v) {
    EXPECT_GE(p.part_of[v], p.part_of[v - 1]);
  }
  EXPECT_EQ(p.part_of.front(), 0);
  EXPECT_EQ(p.part_of.back(), 3);
  // Rough balance.
  std::vector<weight_t> loads(4, 0);
  weight_t total = 0;
  for (std::size_t v = 0; v < weights.size(); ++v) {
    loads[p.part_of[v]] += weights[v];
    total += weights[v];
  }
  for (weight_t l : loads) {
    EXPECT_LE(l, total / 4 + 10);
  }
}

TEST(PartitionerTest, BlockPartitionSkewedWeights) {
  // One huge vertex: everything else should share the remaining parts.
  std::vector<weight_t> weights(50, 1);
  weights[0] = 1000;
  const Partition p = ht::hypergraph::partition_block(weights, 4);
  EXPECT_EQ(p.part_of[0], 0);
  EXPECT_EQ(p.part_of[1], 1);  // block closes right after the giant
}

// ---------------------------------------------------------------- models

TEST(ModelsTest, FineGrainModelStructure) {
  using ht::tensor::CooTensor;
  using ht::tensor::index_t;
  CooTensor x(ht::tensor::Shape{3, 3, 3});
  x.push_back(std::vector<index_t>{0, 1, 2}, 1.0);
  x.push_back(std::vector<index_t>{0, 2, 2}, 1.0);
  x.push_back(std::vector<index_t>{1, 1, 0}, 1.0);

  const auto model = ht::hypergraph::build_fine_grain_model(x);
  EXPECT_EQ(model.hg.num_vertices(), 3u);  // one per nonzero
  // Shared rows: mode0 row0 (nnz 0,1), mode1 row1 (nnz 0,2), mode2 row2
  // (nnz 0,1) -> 3 nets with >= 2 pins.
  EXPECT_EQ(model.hg.num_nets(), 3u);
  ASSERT_EQ(model.net_mode.size(), 3u);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(model.hg.net_pins(static_cast<ht::hypergraph::nid_t>(n)).size(),
              2u);
  }
}

TEST(ModelsTest, FineGrainCutsizeTracksCommunication) {
  // All nonzeros in one part: zero cut.
  const auto x = ht::tensor::random_uniform(ht::tensor::Shape{30, 30, 30},
                                            400, 21);
  const auto model = ht::hypergraph::build_fine_grain_model(x);
  Partition all_one{2, std::vector<int>(model.hg.num_vertices(), 0)};
  EXPECT_EQ(ht::hypergraph::connectivity_cutsize(model.hg, all_one), 0);
}

TEST(ModelsTest, CoarseGrainModelWeightsAreSliceSizes) {
  using ht::tensor::CooTensor;
  using ht::tensor::index_t;
  CooTensor x(ht::tensor::Shape{4, 3, 2});
  x.push_back(std::vector<index_t>{0, 0, 0}, 1.0);
  x.push_back(std::vector<index_t>{0, 1, 1}, 1.0);
  x.push_back(std::vector<index_t>{2, 0, 1}, 1.0);

  const auto model = ht::hypergraph::build_coarse_grain_model(x, 0);
  // Compacted to the non-empty rows {0, 2}.
  ASSERT_EQ(model.rows, (std::vector<index_t>{0, 2}));
  EXPECT_EQ(model.hg.num_vertices(), 2u);
  EXPECT_EQ(model.hg.vertex_weight(0), 2);
  EXPECT_EQ(model.hg.vertex_weight(1), 1);
  // Net: mode-1 row 0 is shared by mode-0 rows {0, 2}. Mode-2 row 1 shared
  // by {0, 2} as well.
  EXPECT_EQ(model.hg.num_nets(), 2u);
}

TEST(ModelsTest, CoarseGrainDedupesRepeatedCooccurrences) {
  using ht::tensor::CooTensor;
  using ht::tensor::index_t;
  CooTensor x(ht::tensor::Shape{2, 2});
  x.push_back(std::vector<index_t>{0, 0}, 1.0);
  x.push_back(std::vector<index_t>{1, 0}, 1.0);
  x.push_back(std::vector<index_t>{1, 0}, 2.0);  // duplicate co-occurrence
  const auto model = ht::hypergraph::build_coarse_grain_model(x, 0);
  ASSERT_EQ(model.hg.num_nets(), 1u);
  EXPECT_EQ(model.hg.net_pins(0).size(), 2u);  // deduped pins {0, 1}
}

TEST(ModelsTest, CoarseGrainDropsHugeNets) {
  using ht::tensor::CooTensor;
  using ht::tensor::index_t;
  // Mode-1 row 0 co-occurs with 5 mode-0 rows: dropped when the cap is 4.
  CooTensor x(ht::tensor::Shape{6, 2});
  for (index_t i = 0; i < 5; ++i) {
    x.push_back(std::vector<index_t>{i, 0}, 1.0);
  }
  const auto capped = ht::hypergraph::build_coarse_grain_model(x, 0, 4);
  EXPECT_EQ(capped.hg.num_nets(), 0u);
  const auto uncapped = ht::hypergraph::build_coarse_grain_model(x, 0, 4096);
  EXPECT_EQ(uncapped.hg.num_nets(), 1u);
}

TEST(ModelsTest, ModelsOnGeneratedTensorAreConsistent) {
  const auto x =
      ht::tensor::random_zipf(ht::tensor::Shape{50, 80, 40}, 1500,
                              {1.0, 0.8, 0.5}, 31);
  const auto fine = ht::hypergraph::build_fine_grain_model(x);
  EXPECT_EQ(fine.hg.num_vertices(), x.nnz());
  EXPECT_LE(fine.hg.num_pins(), 3 * x.nnz());
  for (std::size_t mode = 0; mode < 3; ++mode) {
    const auto model = ht::hypergraph::build_coarse_grain_model(x, mode);
    EXPECT_LE(model.hg.num_vertices(), x.dim(mode));
    EXPECT_EQ(model.rows.size(), model.hg.num_vertices());
    // Weights still sum to nnz: every nonzero lies in exactly one slice.
    EXPECT_EQ(model.hg.total_vertex_weight(), static_cast<weight_t>(x.nnz()));
  }
}

TEST(ModelsTest, PartitioningFineGrainModelEndToEnd) {
  const auto x = ht::tensor::random_zipf(ht::tensor::Shape{60, 60, 60}, 2000,
                                         {1.1, 0.7, 0.3}, 41);
  const auto model = ht::hypergraph::build_fine_grain_model(x);
  PartitionerOptions opt;
  opt.num_parts = 4;
  const Partition hp = ht::hypergraph::partition_multilevel(model.hg, opt);
  const Partition rd = ht::hypergraph::partition_random(model.hg, 4, 3);
  EXPECT_LT(ht::hypergraph::connectivity_cutsize(model.hg, hp),
            ht::hypergraph::connectivity_cutsize(model.hg, rd));
  EXPECT_LE(ht::hypergraph::imbalance(model.hg, hp), 0.15);
}

}  // namespace
