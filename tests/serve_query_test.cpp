// QueryEngine: cache-transparent bit-exactness (cached == uncached ==
// train-time), LRU eviction bookkeeping, batched endpoints identical to
// their sequential loops to 0 ULP, and deterministic top-k against a
// brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "core/hooi.hpp"
#include "core/tucker_model.hpp"
#include "serve/query_engine.hpp"
#include "serve/serve_model.hpp"
#include "tensor/generators.hpp"

namespace {

using ht::core::TuckerModel;
using ht::serve::QueryEngine;
using ht::serve::QueryOptions;
using ht::serve::Scored;
using ht::serve::ServeModel;
using ht::tensor::CooTensor;
using ht::tensor::index_t;

std::shared_ptr<const ServeModel> shared_model() {
  static const std::shared_ptr<const ServeModel> model = [] {
    CooTensor x = ht::tensor::random_zipf({40, 25, 12}, 2000,
                                          {0.9, 0.8, 0.5}, 17);
    ht::tensor::plant_low_rank_values(x, 3, 0.1, 18);
    ht::core::HooiOptions options;
    options.ranks = {6, 5, 3};
    options.max_iterations = 3;
    return std::make_shared<const ServeModel>(
        TuckerModel::from_hooi(x, ht::core::hooi(x, options)));
  }();
  return model;
}

std::vector<std::vector<index_t>> random_queries(std::size_t count,
                                                 unsigned seed) {
  const auto& dims = shared_model()->dims();
  std::vector<std::vector<index_t>> queries;
  std::uint64_t s = seed * 2654435761u + 99;
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<index_t> idx(dims.size());
    for (std::size_t n = 0; n < dims.size(); ++n) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      idx[n] = static_cast<index_t>((s >> 33) % dims[n]);
    }
    queries.push_back(std::move(idx));
  }
  return queries;
}

TEST(QueryEngineTest, CachedEqualsUncachedBitExact) {
  QueryOptions cached_opts;
  cached_opts.cache_entries = 64;
  QueryOptions uncached_opts;
  uncached_opts.cache_entries = 0;
  QueryEngine cached(shared_model(), cached_opts);
  QueryEngine uncached(shared_model(), uncached_opts);

  const auto queries = random_queries(500, 1);
  for (const auto& idx : queries) {
    const double a = cached.score(idx);
    const double b = uncached.score(idx);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, shared_model()->model().reconstruct_at(idx));
  }
  const auto cs = cached.cache_stats();
  EXPECT_GT(cs.hits, 0u) << "500 queries over 40 users must repeat users";
  const auto us = uncached.cache_stats();
  EXPECT_EQ(us.hits, 0u);
  EXPECT_EQ(us.misses, 0u) << "disabled cache should not track stats";
}

TEST(QueryEngineTest, LruEvictsLeastRecentlyUsed) {
  QueryOptions opts;
  opts.cache_entries = 4;
  QueryEngine engine(shared_model(), opts);

  auto touch = [&](index_t user) {
    engine.score(std::vector<index_t>{user, 0, 0});
  };
  // Fill: 0 1 2 3 -> all misses, no eviction.
  for (index_t u = 0; u < 4; ++u) touch(u);
  auto cs = engine.cache_stats();
  EXPECT_EQ(cs.misses, 4u);
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(cs.evictions, 0u);

  // Re-touch 0 (hit, moves to front), then add 4: evicts 1 (LRU), not 0.
  touch(0);
  touch(4);
  cs = engine.cache_stats();
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.misses, 5u);
  EXPECT_EQ(cs.evictions, 1u);

  // 0 still cached (hit); 1 was evicted (miss, evicting 2 in turn).
  touch(0);
  touch(1);
  cs = engine.cache_stats();
  EXPECT_EQ(cs.hits, 2u);
  EXPECT_EQ(cs.misses, 6u);
  EXPECT_EQ(cs.evictions, 2u);

  // Capacity never exceeded: total distinct entries alive = 4.
  // (5 users touched, 2 evictions, 4 slots: 5 - 2 + 1 re-insert = 4.)
  engine.clear_cache();
  cs = engine.cache_stats();
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(cs.misses, 0u);
  EXPECT_EQ(cs.evictions, 0u);
}

TEST(QueryEngineTest, ScoreBatchMatchesSequentialZeroUlp) {
  QueryOptions opts;
  opts.cache_entries = 32;
  QueryEngine engine(shared_model(), opts);
  QueryEngine sequential(shared_model(), opts);

  const auto queries = random_queries(400, 2);
  const auto batched = engine.score_batch(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double seq = sequential.score(queries[q]);
    // Bitwise comparison — 0 ULP, not a tolerance.
    EXPECT_EQ(std::memcmp(&batched[q], &seq, sizeof(double)), 0)
        << "query " << q << ": " << batched[q] << " vs " << seq;
  }
}

TEST(QueryEngineTest, TopkMatchesBruteForceOracle) {
  QueryOptions opts;
  QueryEngine engine(shared_model(), opts);
  const auto& dims = shared_model()->dims();
  const std::size_t k = 7;

  for (index_t user = 0; user < 10; ++user) {
    const std::vector<index_t> rest = {static_cast<index_t>(user % dims[2])};
    const auto top = engine.topk(user, k, rest);
    ASSERT_EQ(top.size(), k);

    // Oracle: score every item via the point API, sort the same way.
    std::vector<Scored> oracle;
    for (index_t item = 0; item < dims[1]; ++item) {
      const std::vector<index_t> idx = {user, item, rest[0]};
      oracle.push_back({item, engine.score(idx)});
    }
    std::sort(oracle.begin(), oracle.end(), [](const Scored& a,
                                               const Scored& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.item < b.item;
    });
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(top[i].item, oracle[i].item) << "user " << user << " pos " << i;
      EXPECT_EQ(top[i].score, oracle[i].score)
          << "top-k score must be bit-identical to the point score";
    }
  }
}

TEST(QueryEngineTest, TopkBatchMatchesSequential) {
  QueryOptions opts;
  opts.cache_entries = 8;
  QueryEngine engine(shared_model(), opts);
  QueryEngine sequential(shared_model(), opts);

  std::vector<index_t> entities;
  for (index_t u = 0; u < 30; ++u) entities.push_back(u % 15);  // repeats
  const std::vector<index_t> rest = {3};
  const auto batched = engine.topk_batch(entities, 5, rest);
  ASSERT_EQ(batched.size(), entities.size());
  for (std::size_t e = 0; e < entities.size(); ++e) {
    const auto seq = sequential.topk(entities[e], 5, rest);
    ASSERT_EQ(batched[e].size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(batched[e][i].item, seq[i].item);
      EXPECT_EQ(batched[e][i].score, seq[i].score);
    }
  }
}

TEST(QueryEngineTest, TopkClampsKToItemCount) {
  QueryEngine engine(shared_model(), QueryOptions{});
  const auto top = engine.topk(0, 10000, std::vector<index_t>{0});
  EXPECT_EQ(top.size(), shared_model()->dims()[1]);
}

}  // namespace
