// Golden equivalence of the fiber-factored TTMc kernels against the
// per-nonzero kernels, plus the fiber-index invariants and the kAuto
// selection heuristic.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/hooi.hpp"
#include "core/symbolic.hpp"
#include "core/ttmc.hpp"
#include "dist/dist_hooi.hpp"
#include "la/matrix.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::ModeSymbolic;
using ht::core::Schedule;
using ht::core::SymbolicTtmc;
using ht::core::TtmcKernel;
using ht::core::TtmcOptions;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

std::vector<Matrix> random_factors(const Shape& shape,
                                   const std::vector<index_t>& ranks,
                                   std::uint64_t seed) {
  std::vector<Matrix> f;
  for (std::size_t n = 0; n < shape.size(); ++n) {
    f.push_back(random_matrix(shape[n], ranks[n], seed + n));
  }
  return f;
}

// Factoring reorders floating-point additions, so equivalence is to a tight
// absolute tolerance rather than bit-for-bit (values are O(1), rows hold at
// most a few hundred terms).
constexpr double kTol = 1e-11;

struct FiberCase {
  std::string name;
  CooTensor tensor;
  std::vector<index_t> ranks;
};

std::vector<FiberCase> equivalence_cases() {
  std::vector<FiberCase> cases;
  cases.push_back({"order3_fibered",
                   ht::tensor::random_fibered(Shape{40, 30, 50}, 300, 6, 11),
                   {4, 3, 5}});
  cases.push_back({"order3_scattered",
                   ht::tensor::random_uniform(Shape{40, 30, 50}, 800, 13),
                   {4, 3, 5}});
  cases.push_back({"order4_fibered",
                   ht::tensor::random_fibered(Shape{15, 12, 10, 40}, 250, 5, 17),
                   {3, 2, 4, 3}});
  cases.push_back({"order4_scattered",
                   ht::tensor::random_uniform(Shape{15, 12, 10, 40}, 700, 19),
                   {3, 2, 4, 3}});
  cases.push_back({"order5_fibered",
                   ht::tensor::random_fibered(Shape{8, 7, 6, 5, 20}, 150, 4, 23),
                   {2, 2, 2, 2, 3}});
  return cases;
}

TEST(FiberIndexTest, InvariantsHoldPerMode) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    if (x.order() != 3 && x.order() != 4) continue;
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      const ModeSymbolic& m = sym.modes[n];
      ASSERT_TRUE(m.has_fibers()) << c.name << " mode " << n;
      ASSERT_EQ(m.fiber_row_ptr.size(), m.num_rows() + 1);
      ASSERT_EQ(m.fiber_ptr.front(), 0u);
      ASSERT_EQ(m.fiber_ptr.back(), x.nnz());

      std::vector<std::size_t> others;
      for (std::size_t t = 0; t < x.order(); ++t) {
        if (t != n) others.push_back(t);
      }
      const auto idx_a = x.indices(others[0]);
      for (std::size_t r = 0; r < m.num_rows(); ++r) {
        ASSERT_EQ(m.fiber_ptr[m.fiber_row_ptr[r]], m.row_ptr[r]);
        ASSERT_EQ(m.fiber_ptr[m.fiber_row_ptr[r + 1]], m.row_ptr[r + 1]);
        for (nnz_t k = m.fiber_row_ptr[r]; k < m.fiber_row_ptr[r + 1]; ++k) {
          ASSERT_LT(m.fiber_ptr[k], m.fiber_ptr[k + 1]);
          const index_t a = idx_a[m.nnz_order[m.fiber_ptr[k]]];
          for (nnz_t i = m.fiber_ptr[k]; i < m.fiber_ptr[k + 1]; ++i) {
            ASSERT_EQ(idx_a[m.nnz_order[i]], a)
                << c.name << " mode " << n << ": fiber " << k
                << " mixes leading indices";
          }
          // Fibers within a row are maximal: adjacent fibers differ.
          if (k + 1 < m.fiber_row_ptr[r + 1]) {
            ASSERT_NE(idx_a[m.nnz_order[m.fiber_ptr[k + 1]]], a);
          }
        }
      }

      if (x.order() == 4) {
        const auto idx_b = x.indices(others[1]);
        ASSERT_EQ(m.subfiber_fiber_ptr.size(), m.fiber_ptr.size());
        for (std::size_t k = 0; k + 1 < m.fiber_ptr.size(); ++k) {
          ASSERT_EQ(m.subfiber_ptr[m.subfiber_fiber_ptr[k]], m.fiber_ptr[k]);
          ASSERT_EQ(m.subfiber_ptr[m.subfiber_fiber_ptr[k + 1]],
                    m.fiber_ptr[k + 1]);
          for (nnz_t j = m.subfiber_fiber_ptr[k];
               j < m.subfiber_fiber_ptr[k + 1]; ++j) {
            const nnz_t first = m.nnz_order[m.subfiber_ptr[j]];
            for (nnz_t i = m.subfiber_ptr[j]; i < m.subfiber_ptr[j + 1]; ++i) {
              ASSERT_EQ(idx_a[m.nnz_order[i]], idx_a[first]);
              ASSERT_EQ(idx_b[m.nnz_order[i]], idx_b[first]);
            }
          }
        }
      }
    }
  }
}

TEST(FiberIndexTest, OptOutBuildsNoFibers) {
  const CooTensor x = ht::tensor::random_fibered(Shape{20, 20, 20}, 50, 4, 3);
  const SymbolicTtmc sym = SymbolicTtmc::build(x, /*with_fibers=*/false);
  for (const auto& m : sym.modes) {
    EXPECT_FALSE(m.has_fibers());
    EXPECT_EQ(m.avg_fiber_length(), 0.0);
  }
}

TEST(FiberIndexTest, OrderFiveSkipsFiberIndex) {
  const CooTensor x =
      ht::tensor::random_uniform(Shape{5, 5, 5, 5, 5}, 100, 29);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  for (const auto& m : sym.modes) EXPECT_FALSE(m.has_fibers());
}

TEST(FiberTtmcTest, MatchesPerNnzFullModeAllSchedules) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const auto factors = random_factors(x.shape(), c.ranks, 31);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
        Matrix y_nnz, y_fib;
        ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_nnz,
                            {s, TtmcKernel::kPerNnz});
        ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_fib,
                            {s, TtmcKernel::kFiberFactored});
        ASSERT_EQ(y_nnz.rows(), y_fib.rows());
        ASSERT_EQ(y_nnz.cols(), y_fib.cols());
        EXPECT_TRUE(y_nnz.approx_equal(y_fib, kTol))
            << c.name << " mode " << n << " schedule "
            << (s == Schedule::kDynamic ? "dynamic" : "static");
      }
    }
  }
}

TEST(FiberTtmcTest, MatchesPerNnzSubsetPath) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const auto factors = random_factors(x.shape(), c.ranks, 37);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      // Every other compact row, as the coarse-grain owners would request.
      std::vector<std::uint32_t> positions;
      for (std::uint32_t p = 0; p < sym.modes[n].num_rows(); p += 2) {
        positions.push_back(p);
      }
      for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
        Matrix y_nnz, y_fib;
        ht::core::ttmc_mode_subset(x, factors, n, sym.modes[n], positions,
                                   y_nnz, {s, TtmcKernel::kPerNnz});
        ht::core::ttmc_mode_subset(x, factors, n, sym.modes[n], positions,
                                   y_fib, {s, TtmcKernel::kFiberFactored});
        EXPECT_TRUE(y_nnz.approx_equal(y_fib, kTol))
            << c.name << " mode " << n;
      }
    }
  }
}

TEST(FiberTtmcTest, OrderFiveFiberRequestFallsBackExactly) {
  const CooTensor x =
      ht::tensor::random_fibered(Shape{8, 7, 6, 5, 20}, 150, 4, 23);
  const auto factors = random_factors(x.shape(), {2, 2, 2, 2, 3}, 41);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  Matrix y_nnz, y_fib;
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y_nnz,
                      {Schedule::kDynamic, TtmcKernel::kPerNnz});
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y_fib,
                      {Schedule::kDynamic, TtmcKernel::kFiberFactored});
  // No fiber kernel exists for order 5: same kernel runs, bit-equal result.
  EXPECT_TRUE(y_nnz.approx_equal(y_fib, 0.0));
}

TEST(FiberTtmcTest, AutoHeuristicSelectsByFiberLength) {
  const CooTensor dense_fibers =
      ht::tensor::random_fibered(Shape{30, 30, 60}, 200, 8, 43);
  const CooTensor sparse_fibers =
      ht::tensor::random_uniform(Shape{200, 200, 200}, 500, 47);
  const SymbolicTtmc sym_dense = SymbolicTtmc::build(dense_fibers);
  const SymbolicTtmc sym_sparse = SymbolicTtmc::build(sparse_fibers);

  // Mode 0 of the fibered tensor sees ~8-long fibers (leading other mode is
  // mode 1, shared along each last-mode fiber).
  EXPECT_GE(sym_dense.modes[0].avg_fiber_length(), 4.0);
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym_dense.modes[0], 3, {}),
            TtmcKernel::kFiberFactored);

  // 500 nonzeros in a 200^3 cube: virtually every fiber is a singleton.
  EXPECT_LT(sym_sparse.modes[0].avg_fiber_length(), 2.0);
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym_sparse.modes[0], 3, {}),
            TtmcKernel::kPerNnz);

  // The threshold is a knob: an impossible threshold forces per-nnz, a
  // trivial one forces fiber-factored.
  TtmcOptions never;
  never.fiber_threshold = 1e9;
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym_dense.modes[0], 3, never),
            TtmcKernel::kPerNnz);
  TtmcOptions always;
  always.fiber_threshold = 0.0;
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym_sparse.modes[0], 3, always),
            TtmcKernel::kFiberFactored);
}

TEST(FiberTtmcTest, HooiConvergesIdenticallyUnderBothKernels) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 300, 5, 53);
  ht::core::HooiOptions base;
  base.ranks = {3, 3, 3};
  base.max_iterations = 3;
  base.fit_tolerance = 0.0;

  ht::core::HooiOptions per_nnz = base;
  per_nnz.ttmc_kernel = TtmcKernel::kPerNnz;
  ht::core::HooiOptions fiber = base;
  fiber.ttmc_kernel = TtmcKernel::kFiberFactored;

  const auto a = ht::core::hooi(x, per_nnz);
  const auto b = ht::core::hooi(x, fiber);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8) << "sweep " << i;
  }
}

TEST(FiberTtmcTest, DistHooiMatchesUnderBothKernels) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 250, 5, 59);
  ht::dist::DistHooiOptions base;
  base.ranks = {3, 3, 3};
  base.max_iterations = 2;
  base.num_ranks = 4;
  base.grain = ht::dist::Grain::kCoarse;  // exercises ttmc_mode_subset

  ht::dist::DistHooiOptions per_nnz = base;
  per_nnz.ttmc_kernel = TtmcKernel::kPerNnz;
  ht::dist::DistHooiOptions fiber = base;
  fiber.ttmc_kernel = TtmcKernel::kFiberFactored;

  const auto a = ht::dist::dist_hooi(x, per_nnz);
  const auto b = ht::dist::dist_hooi(x, fiber);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8) << "sweep " << i;
  }
}

}  // namespace
