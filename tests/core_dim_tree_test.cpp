// Golden equivalence of tree-served TTMc against the direct kernels across
// orders 3/4/5 x {full mode, subset, HOOI, distributed coarse grain} x both
// OpenMP schedules, plus unit tests pinning the kAuto cost model's choice
// on degenerate shapes.
#include <gtest/gtest.h>

#include <vector>

#include "core/dim_tree.hpp"
#include "core/hooi.hpp"
#include "core/rank_sweep.hpp"
#include "core/symbolic.hpp"
#include "core/ttmc.hpp"
#include "dist/dist_hooi.hpp"
#include "la/matrix.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::DimTreePlan;
using ht::core::Schedule;
using ht::core::SymbolicTtmc;
using ht::core::TtmcOptions;
using ht::core::TtmcScheduler;
using ht::core::TtmcStrategy;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

// Reordered floating-point sums: tight absolute tolerance, not bit-equal.
constexpr double kTol = 1e-12;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

std::vector<Matrix> random_factors(const Shape& shape,
                                   const std::vector<index_t>& ranks,
                                   std::uint64_t seed) {
  std::vector<Matrix> f;
  for (std::size_t n = 0; n < shape.size(); ++n) {
    f.push_back(random_matrix(shape[n], ranks[n], seed + n));
  }
  return f;
}

struct TreeCase {
  std::string name;
  CooTensor tensor;
  std::vector<index_t> ranks;
};

std::vector<TreeCase> equivalence_cases() {
  std::vector<TreeCase> cases;
  cases.push_back({"order3_fibered",
                   ht::tensor::random_fibered(Shape{40, 30, 50}, 300, 6, 11),
                   {4, 3, 5}});
  cases.push_back({"order3_scattered",
                   ht::tensor::random_uniform(Shape{40, 30, 50}, 800, 13),
                   {4, 3, 5}});
  cases.push_back({"order4_fibered",
                   ht::tensor::random_fibered(Shape{15, 12, 10, 40}, 250, 5, 17),
                   {3, 2, 4, 3}});
  cases.push_back({"order4_scattered",
                   ht::tensor::random_uniform(Shape{15, 12, 10, 40}, 700, 19),
                   {3, 2, 4, 3}});
  cases.push_back({"order5_fibered",
                   ht::tensor::random_fibered(Shape{8, 7, 6, 5, 20}, 150, 4, 23),
                   {2, 2, 2, 2, 3}});
  return cases;
}

TEST(DimTreePlanTest, StructureMatchesSymbolic) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const DimTreePlan tree = DimTreePlan::build(x);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    EXPECT_EQ(tree.order(), x.order());
    EXPECT_EQ(tree.split(), (x.order() + 1) / 2);
    for (std::size_t n = 0; n < x.order(); ++n) {
      // Tree-served Y(n) has one row per non-empty mode-n slice, in the
      // compact order of ModeSymbolic.
      ASSERT_EQ(tree.serve_rows(n), sym.modes[n].num_rows()) << c.name;
      const auto& chain = tree.serve_chain(n);
      if (!chain.empty()) {
        const auto& rows = chain.back().out_idx;
        ASSERT_EQ(rows.size(), 1u);
        for (std::size_t r = 0; r < rows[0].size(); ++r) {
          ASSERT_EQ(rows[0][r], sym.modes[n].rows[r])
              << c.name << " mode " << n << " row " << r;
        }
      }
      EXPECT_GT(tree.serve_cost(n, c.ranks), 0.0);
    }
    EXPECT_GT(tree.contract_cost(true, c.ranks), 0.0);
    EXPECT_GT(tree.contract_cost(false, c.ranks), 0.0);
  }
}

TEST(DimTreeTtmcTest, TreeServedMatchesDirectFullMode) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const auto factors = random_factors(x.shape(), c.ranks, 31);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    const DimTreePlan tree = DimTreePlan::build(x);
    for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
      TtmcOptions direct_opts;
      direct_opts.schedule = s;
      direct_opts.strategy = TtmcStrategy::kDirect;
      TtmcOptions tree_opts = direct_opts;
      tree_opts.strategy = TtmcStrategy::kTree;
      TtmcScheduler direct(x, sym, nullptr, c.ranks, direct_opts);
      TtmcScheduler served(x, sym, &tree, c.ranks, tree_opts);
      for (std::size_t n = 0; n < x.order(); ++n) {
        ASSERT_EQ(served.selected(n), TtmcStrategy::kTree);
        Matrix y_direct, y_tree;
        direct.compute(factors, n, y_direct);
        served.compute(factors, n, y_tree);
        ASSERT_EQ(y_direct.rows(), y_tree.rows()) << c.name << " mode " << n;
        ASSERT_EQ(y_direct.cols(), y_tree.cols()) << c.name << " mode " << n;
        EXPECT_TRUE(y_direct.approx_equal(y_tree, kTol))
            << c.name << " mode " << n << " schedule "
            << (s == Schedule::kDynamic ? "dynamic" : "static");
      }
    }
  }
}

TEST(DimTreeTtmcTest, TreeServedMatchesDirectSubset) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const auto factors = random_factors(x.shape(), c.ranks, 37);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    const DimTreePlan tree = DimTreePlan::build(x);
    for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
      TtmcOptions tree_opts;
      tree_opts.schedule = s;
      tree_opts.strategy = TtmcStrategy::kTree;
      TtmcScheduler served(x, sym, &tree, c.ranks, tree_opts);
      for (std::size_t n = 0; n < x.order(); ++n) {
        // Every other compact row, as the coarse-grain owners request.
        std::vector<std::uint32_t> positions;
        for (std::uint32_t p = 0; p < sym.modes[n].num_rows(); p += 2) {
          positions.push_back(p);
        }
        Matrix y_direct, y_tree;
        ht::core::ttmc_mode_subset(x, factors, n, sym.modes[n], positions,
                                   y_direct, {s});
        served.compute_subset(factors, n, positions, y_tree);
        EXPECT_TRUE(y_direct.approx_equal(y_tree, kTol))
            << c.name << " mode " << n;
      }
    }
  }
}

// Full HOOI runs: the tree schedule reuses partials across modes while the
// factors evolve; the fits must track the direct runs through every sweep.
TEST(DimTreeTtmcTest, HooiFitsMatchDirectAllOrders) {
  for (const auto& c : equivalence_cases()) {
    ht::core::HooiOptions base;
    base.ranks = c.ranks;
    base.max_iterations = 3;
    base.fit_tolerance = 0.0;

    ht::core::HooiOptions direct = base;
    direct.ttmc_strategy = TtmcStrategy::kDirect;
    ht::core::HooiOptions tree = base;
    tree.ttmc_strategy = TtmcStrategy::kTree;

    const auto a = ht::core::hooi(c.tensor, direct);
    const auto b = ht::core::hooi(c.tensor, tree);
    ASSERT_EQ(a.fits.size(), b.fits.size()) << c.name;
    for (std::size_t i = 0; i < a.fits.size(); ++i) {
      EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8) << c.name << " sweep " << i;
    }
  }
}

TEST(DimTreeTtmcTest, DistCoarseFitsMatchDirect) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 250, 5, 59);
  ht::dist::DistHooiOptions base;
  base.ranks = {3, 3, 3};
  base.max_iterations = 2;
  base.num_ranks = 4;
  base.grain = ht::dist::Grain::kCoarse;  // exercises subset serving

  ht::dist::DistHooiOptions direct = base;
  direct.ttmc_strategy = TtmcStrategy::kDirect;
  ht::dist::DistHooiOptions tree = base;
  tree.ttmc_strategy = TtmcStrategy::kTree;

  const auto a = ht::dist::dist_hooi(x, direct);
  const auto b = ht::dist::dist_hooi(x, tree);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8) << "sweep " << i;
  }
}

TEST(DimTreeTtmcTest, DistFineFitsMatchDirect) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 250, 5, 61);
  ht::dist::DistHooiOptions base;
  base.ranks = {3, 3, 3};
  base.max_iterations = 2;
  base.num_ranks = 4;
  base.grain = ht::dist::Grain::kFine;

  ht::dist::DistHooiOptions direct = base;
  direct.ttmc_strategy = TtmcStrategy::kDirect;
  ht::dist::DistHooiOptions tree = base;
  tree.ttmc_strategy = TtmcStrategy::kTree;

  const auto a = ht::dist::dist_hooi(x, direct);
  const auto b = ht::dist::dist_hooi(x, tree);
  ASSERT_EQ(a.fits.size(), b.fits.size());
  for (std::size_t i = 0; i < a.fits.size(); ++i) {
    EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8) << "sweep " << i;
  }
}

TEST(DimTreeTtmcTest, RankSweepSharesOnePlan) {
  const CooTensor x = ht::tensor::random_uniform(Shape{20, 18, 22}, 900, 67);
  ht::core::HooiOptions base;
  base.max_iterations = 2;
  base.fit_tolerance = 0.0;
  const std::vector<std::vector<index_t>> candidates = {{2, 2, 2}, {3, 3, 3}};

  ht::core::HooiOptions tree_base = base;
  tree_base.ttmc_strategy = TtmcStrategy::kTree;
  ht::core::HooiOptions direct_base = base;
  direct_base.ttmc_strategy = TtmcStrategy::kDirect;

  const auto swept_tree = ht::core::rank_sweep(x, candidates, tree_base);
  const auto swept_direct = ht::core::rank_sweep(x, candidates, direct_base);
  ASSERT_EQ(swept_tree.entries.size(), swept_direct.entries.size());
  for (std::size_t i = 0; i < swept_tree.entries.size(); ++i) {
    EXPECT_NEAR(swept_tree.entries[i].fit, swept_direct.entries[i].fit, 1e-8);
  }
}

// ---- cost model ------------------------------------------------------------

TtmcScheduler make_auto_scheduler(const CooTensor& x, const SymbolicTtmc& sym,
                                  const DimTreePlan& tree,
                                  const std::vector<index_t>& ranks) {
  TtmcOptions opts;
  opts.strategy = TtmcStrategy::kAuto;
  return TtmcScheduler(x, sym, &tree, ranks, opts);
}

TEST(TtmcCostModelTest, SingletonFibersStayDirect) {
  // 500 nonzeros in a 200^3 cube: no two nonzeros share a coordinate pair,
  // so every merge group is a singleton and the tree cannot amortize its
  // two extra nonzero passes.
  const CooTensor x = ht::tensor::random_uniform(Shape{200, 200, 200}, 500, 71);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  const DimTreePlan tree = DimTreePlan::build(x);
  const std::vector<index_t> ranks = {4, 4, 4};
  const TtmcScheduler s = make_auto_scheduler(x, sym, tree, ranks);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(s.selected(n), TtmcStrategy::kDirect) << "mode " << n;
  }
}

TEST(TtmcCostModelTest, HeavyMergingGoesTree) {
  // 20K nonzeros in a 30^3 cube: every coordinate-pair projection is
  // saturated (<= 900 groups). Modes 0 and 1 share one partial whose build
  // is amortized across both; mode 2's partial build is a single
  // *streaming* nonzero pass, cheaper than the indirected direct kernel it
  // replaces — all three modes go tree-served.
  const CooTensor x = ht::tensor::random_uniform(Shape{30, 30, 30}, 20000, 73);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  const DimTreePlan tree = DimTreePlan::build(x);
  const std::vector<index_t> ranks = {5, 5, 5};
  const TtmcScheduler s = make_auto_scheduler(x, sym, tree, ranks);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(s.selected(n), TtmcStrategy::kTree) << "mode " << n;
    EXPECT_LT(s.serve_cost(n), s.direct_cost(n)) << "mode " << n;
  }
}

TEST(TtmcCostModelTest, RankOneFollowsMerging) {
  // Rank 1 everywhere: widths collapse to 1 and the decision reduces to
  // nonzero passes vs merge-group passes — tree on the merge-saturated
  // tensor, direct when every group is a singleton.
  const CooTensor merged = ht::tensor::random_uniform(Shape{30, 30, 30}, 20000, 79);
  const SymbolicTtmc sym_m = SymbolicTtmc::build(merged);
  const DimTreePlan tree_m = DimTreePlan::build(merged);
  const std::vector<index_t> ones = {1, 1, 1};
  const TtmcScheduler sm = make_auto_scheduler(merged, sym_m, tree_m, ones);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(sm.selected(n), TtmcStrategy::kTree) << "mode " << n;
  }

  const CooTensor scattered =
      ht::tensor::random_uniform(Shape{200, 200, 200}, 500, 83);
  const SymbolicTtmc sym_s = SymbolicTtmc::build(scattered);
  const DimTreePlan tree_s = DimTreePlan::build(scattered);
  const TtmcScheduler ss = make_auto_scheduler(scattered, sym_s, tree_s, ones);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(ss.selected(n), TtmcStrategy::kDirect) << "mode " << n;
  }
}

TEST(TtmcCostModelTest, HugeModeServesOnlyTheCheapGroup) {
  // One huge mode: the left-group partial (contract mode 2) has ~one group
  // per nonzero — serving modes 0/1 from it costs more than direct. The
  // right-group partial collapses to <= 36 (i1, i2) groups, so mode 2 is
  // served from the tree while 0 and 1 stay direct.
  const CooTensor x =
      ht::tensor::random_uniform(Shape{50000, 6, 6}, 20000, 89);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  const DimTreePlan tree = DimTreePlan::build(x);
  const std::vector<index_t> ranks = {4, 3, 3};
  const TtmcScheduler s = make_auto_scheduler(x, sym, tree, ranks);
  EXPECT_EQ(s.selected(0), TtmcStrategy::kDirect);
  EXPECT_EQ(s.selected(1), TtmcStrategy::kDirect);
  EXPECT_EQ(s.selected(2), TtmcStrategy::kTree);
}

TEST(TtmcCostModelTest, ExplicitStrategyOverridesModel) {
  const CooTensor x = ht::tensor::random_uniform(Shape{200, 200, 200}, 500, 97);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  const DimTreePlan tree = DimTreePlan::build(x);
  const std::vector<index_t> ranks = {3, 3, 3};
  TtmcOptions force_tree;
  force_tree.strategy = TtmcStrategy::kTree;
  const TtmcScheduler st(x, sym, &tree, ranks, force_tree);
  TtmcOptions force_direct;
  force_direct.strategy = TtmcStrategy::kDirect;
  const TtmcScheduler sd(x, sym, &tree, ranks, force_direct);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(st.selected(n), TtmcStrategy::kTree);
    EXPECT_EQ(sd.selected(n), TtmcStrategy::kDirect);
  }
}

// The scheduler must track factor updates: serving mode k after factors of
// other modes changed has to use the fresh factors, exactly like a direct
// recomputation would (HOOI's correctness depends on this).
TEST(DimTreeTtmcTest, PartialsRefreshAfterFactorUpdates) {
  const CooTensor x = ht::tensor::random_uniform(Shape{18, 16, 20}, 600, 101);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  const DimTreePlan tree = DimTreePlan::build(x);
  const std::vector<index_t> ranks = {3, 3, 3};
  auto factors = random_factors(x.shape(), ranks, 103);

  TtmcOptions tree_opts;
  tree_opts.strategy = TtmcStrategy::kTree;
  TtmcScheduler served(x, sym, &tree, ranks, tree_opts);

  // Two HOOI-like sweeps replacing each factor right after its mode.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t n = 0; n < x.order(); ++n) {
      Matrix y_tree, y_direct;
      served.compute(factors, n, y_tree);
      ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_direct,
                          {Schedule::kDynamic, ht::core::TtmcKernel::kPerNnz});
      ASSERT_TRUE(y_direct.approx_equal(y_tree, kTol))
          << "sweep " << sweep << " mode " << n;
      factors[n] = random_matrix(x.dim(n), ranks[n],
                                 200 + 10 * sweep + n);  // "update" U_n
    }
  }
}

}  // namespace
