#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "util/random.hpp"

namespace {

using ht::la::Matrix;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, RowSpanIsContiguousView) {
  Matrix m(2, 3);
  auto r = m.row(1);
  r[0] = 1.0;
  r[2] = 3.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 3.0);
  EXPECT_EQ(r.size(), 3u);
}

TEST(MatrixTest, FromFlatDataValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), ht::Error);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(t(j, i), m(i, j));
  }
}

TEST(MatrixTest, IdentityAndFrobenius) {
  Matrix id = Matrix::identity(4);
  EXPECT_DOUBLE_EQ(id.frobenius_norm(), 2.0);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id(2, 1), 0.0);
}

TEST(MatrixTest, ApproxEqual) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {1, 2, 3, 4 + 1e-12});
  EXPECT_TRUE(a.approx_equal(b, 1e-9));
  EXPECT_FALSE(a.approx_equal(b, 1e-15));
  EXPECT_FALSE(a.approx_equal(Matrix(2, 3), 1.0));
}

TEST(BlasTest, DotAxpyNrm2Scal) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(ht::la::dot(x, y), 32.0);
  ht::la::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(ht::la::nrm2(x), std::sqrt(14.0));
  ht::la::scal(0.5, x);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(BlasTest, GemvMatchesManual) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  std::vector<double> x = {1, 1, 1}, y(2);
  ht::la::gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(BlasTest, GemvTransposeMatchesManual) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  std::vector<double> x = {1, 2}, y(3);
  ht::la::gemv_t(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(BlasTest, GemmAgainstNaive) {
  const Matrix a = random_matrix(17, 9, 1);
  const Matrix b = random_matrix(9, 13, 2);
  const Matrix c = ht::la::gemm(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), s, 1e-12);
    }
  }
}

TEST(BlasTest, GemmTnEqualsTransposedGemm) {
  const Matrix a = random_matrix(20, 5, 3);
  const Matrix b = random_matrix(20, 7, 4);
  const Matrix c1 = ht::la::gemm_tn(a, b);
  const Matrix c2 = ht::la::gemm(a.transposed(), b);
  EXPECT_TRUE(c1.approx_equal(c2, 1e-12));
}

TEST(BlasTest, GemmNtEqualsGemmWithTranspose) {
  const Matrix a = random_matrix(6, 8, 5);
  const Matrix b = random_matrix(10, 8, 6);
  const Matrix c1 = ht::la::gemm_nt(a, b);
  const Matrix c2 = ht::la::gemm(a, b.transposed());
  EXPECT_TRUE(c1.approx_equal(c2, 1e-12));
}

TEST(BlasTest, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW(ht::la::gemm(a, b), ht::Error);
  std::vector<double> x(5), y(2);
  EXPECT_THROW(ht::la::gemv(a, x, y), ht::Error);
}

TEST(BlasTest, ThreadedAndSerialPathsAgree) {
  // Force the parallel path with a tall matrix and compare to serial.
  const Matrix a = random_matrix(1000, 16, 7);
  const Matrix b = random_matrix(16, 12, 8);
  ht::la::set_blas_threading(true);
  const Matrix ct = ht::la::gemm(a, b);
  ht::la::set_blas_threading(false);
  const Matrix cs = ht::la::gemm(a, b);
  ht::la::set_blas_threading(true);
  EXPECT_TRUE(ct.approx_equal(cs, 1e-11));

  std::vector<double> x(1000), yt(16), ys(16);
  ht::Rng rng(9);
  for (auto& v : x) v = rng.uniform();
  ht::la::set_blas_threading(true);
  ht::la::gemv_t(a, x, yt);
  ht::la::set_blas_threading(false);
  ht::la::gemv_t(a, x, ys);
  ht::la::set_blas_threading(true);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(yt[i], ys[i], 1e-9);
}

}  // namespace
