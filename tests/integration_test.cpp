// End-to-end pipelines across subsystem boundaries: generator -> IO ->
// symbolic -> HOOI -> prediction; distributed runs under the network cost
// model; generator statistics that the benchmark conclusions rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/hooi.hpp"
#include "dist/dist_hooi.hpp"
#include "tensor/generators.hpp"
#include "tensor/io.hpp"

namespace {

using ht::core::HooiOptions;
using ht::dist::DistHooiOptions;
using ht::dist::Grain;
using ht::dist::Method;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

class TempFile {
 public:
  explicit TempFile(const std::string& suffix) {
    path_ = ::testing::TempDir() + "ht_integration_" + suffix;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(IntegrationTest, GenerateSaveLoadDecomposePredict) {
  // Full user workflow: synthesize -> write .tns -> read back -> HOOI ->
  // evaluate the model at known coordinates.
  CooTensor original = ht::tensor::random_zipf(Shape{80, 60, 40}, 20000,
                                               {0.8, 0.5, 0.2}, 31);
  ht::tensor::plant_low_rank_values(original, 4, 0.02, 32);

  TempFile f("roundtrip.tns");
  ht::tensor::write_tns_file(f.path(), original);
  CooTensor loaded = ht::tensor::read_tns_file(f.path(), original.shape());
  ASSERT_EQ(loaded.nnz(), original.nnz());

  HooiOptions options;
  options.ranks = {4, 4, 4};
  options.max_iterations = 8;
  const auto result = ht::core::hooi(loaded, options);
  EXPECT_GT(result.final_fit(), 0.10);  // clear planted structure

  // Model evaluations at nonzero coordinates correlate with the data.
  double dot = 0, nx = 0, nm = 0;
  std::vector<index_t> idx(3);
  for (nnz_t e = 0; e < loaded.nnz(); e += 7) {
    for (std::size_t n = 0; n < 3; ++n) idx[n] = loaded.index(n, e);
    const double model = result.decomposition.reconstruct_at(idx);
    const double truth = loaded.value(e);
    dot += model * truth;
    nx += truth * truth;
    nm += model * model;
  }
  EXPECT_GT(dot / std::sqrt(nx * nm + 1e-30), 0.5);
}

TEST(IntegrationTest, DistributedUnderNetworkModelMatchesFreeNetwork) {
  // The network cost model must change timing only — never results.
  CooTensor x = ht::tensor::random_zipf(Shape{50, 40, 30}, 1200,
                                        {0.9, 0.5, 0.2}, 33);
  ht::tensor::plant_low_rank_values(x, 3, 0.1, 34);

  DistHooiOptions options;
  options.ranks = {3, 3, 3};
  options.grain = Grain::kFine;
  options.method = Method::kHypergraph;
  options.num_ranks = 4;
  options.max_iterations = 2;

  const auto free_net = ht::dist::dist_hooi(x, options);

  ::setenv("HT_NET_LATENCY_US", "1", 1);
  ::setenv("HT_NET_GBPS", "5", 1);
  const auto modeled = ht::dist::dist_hooi(x, options);
  ::unsetenv("HT_NET_LATENCY_US");
  ::unsetenv("HT_NET_GBPS");

  ASSERT_EQ(free_net.fits.size(), modeled.fits.size());
  for (std::size_t i = 0; i < free_net.fits.size(); ++i) {
    EXPECT_DOUBLE_EQ(free_net.fits[i], modeled.fits[i]);
  }
  // Volumes are a property of the partition, not the network speed.
  EXPECT_EQ(free_net.stats.total_comm_entries(),
            modeled.stats.total_comm_entries());
}

TEST(IntegrationTest, PresetTensorsHaveCommunityLocality) {
  // The fine-grain hypergraph benefit depends on cross-mode locality; the
  // preset generator must produce partitions with far lower cutsize than
  // random placement (this is what bench_table2/3 conclusions rest on).
  auto spec = ht::tensor::paper_preset("netflix", 0.1);
  const CooTensor x = ht::tensor::generate_preset(spec, 42);
  DistHooiOptions options;
  options.ranks = spec.ranks;
  options.num_ranks = 4;
  options.max_iterations = 1;
  options.grain = Grain::kFine;

  options.method = Method::kHypergraph;
  const auto hp = ht::dist::dist_hooi(x, options);
  options.method = Method::kRandom;
  const auto rd = ht::dist::dist_hooi(x, options);
  EXPECT_LT(hp.stats.total_comm_entries(),
            rd.stats.total_comm_entries() / 2);
}

TEST(IntegrationTest, PresetTensorsHaveSkewedSlices) {
  // Giant indivisible slices are what drives the paper's coarse-grain
  // imbalance; verify the generator plants them for the 4-mode presets.
  auto spec = ht::tensor::paper_preset("flickr", 0.1);
  const CooTensor x = ht::tensor::generate_preset(spec, 42);
  const auto hist = x.slice_nnz(3);  // tag-like mode, theta = 1.25
  nnz_t top = 0;
  for (auto c : hist) top = std::max(top, c);
  EXPECT_GT(top, x.nnz() / 25)
      << "top slice should hold several percent of all nonzeros";
}

TEST(IntegrationTest, SharedAndDistributedAgreeOnPresetTensor) {
  auto spec = ht::tensor::paper_preset("nell", 0.05);
  const CooTensor x = ht::tensor::generate_preset(spec, 7);

  HooiOptions shared_opt;
  shared_opt.ranks = spec.ranks;
  shared_opt.max_iterations = 2;
  shared_opt.fit_tolerance = 0.0;
  shared_opt.seed = 99;
  const auto shared = ht::core::hooi(x, shared_opt);

  DistHooiOptions dist_opt;
  dist_opt.ranks = spec.ranks;
  dist_opt.grain = Grain::kCoarse;
  dist_opt.method = Method::kBlock;
  dist_opt.num_ranks = 5;
  dist_opt.max_iterations = 2;
  dist_opt.seed = 99;
  const auto dist = ht::dist::dist_hooi(x, dist_opt);

  ASSERT_EQ(dist.fits.size(), shared.fits.size());
  EXPECT_NEAR(dist.fits.back(), shared.fits.back(), 1e-6);
}

TEST(IntegrationTest, MalformedTensorFileFailsCleanly) {
  TempFile f("bad.tns");
  std::FILE* out = std::fopen(f.path().c_str(), "w");
  std::fputs("garbage here\n", out);
  std::fclose(out);
  EXPECT_THROW(ht::tensor::read_tns_file(f.path()), ht::IoError);
}

}  // namespace
