#include <gtest/gtest.h>

#include <vector>

#include "la/blas.hpp"
#include "tensor/dense_tensor.hpp"
#include "util/random.hpp"

namespace {

using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::DenseTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

DenseTensor random_dense(const Shape& shape, std::uint64_t seed) {
  DenseTensor t(shape);
  ht::Rng rng(seed);
  for (auto& v : t.flat()) v = rng.uniform(-1.0, 1.0);
  return t;
}

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

TEST(DenseTensorTest, OffsetLastModeFastest) {
  DenseTensor t(Shape{2, 3, 4});
  EXPECT_EQ(t.offset(std::vector<index_t>{0, 0, 0}), 0u);
  EXPECT_EQ(t.offset(std::vector<index_t>{0, 0, 1}), 1u);
  EXPECT_EQ(t.offset(std::vector<index_t>{0, 1, 0}), 4u);
  EXPECT_EQ(t.offset(std::vector<index_t>{1, 0, 0}), 12u);
  EXPECT_EQ(t.offset(std::vector<index_t>{1, 2, 3}), 23u);
}

TEST(DenseTensorTest, AtReadsAndWrites) {
  DenseTensor t(Shape{2, 2});
  t.at(std::vector<index_t>{1, 0}) = 7.0;
  EXPECT_DOUBLE_EQ(t.flat()[2], 7.0);
}

class MatricizeShapes
    : public ::testing::TestWithParam<std::pair<Shape, std::size_t>> {};

TEST_P(MatricizeShapes, RoundTripsThroughDematricize) {
  const auto& [shape, mode] = GetParam();
  const DenseTensor t = random_dense(shape, 99);
  const Matrix m = t.matricize(mode);
  EXPECT_EQ(m.rows(), shape[mode]);
  EXPECT_EQ(m.rows() * m.cols(), t.size());
  const DenseTensor back = DenseTensor::dematricize(m, shape, mode);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.flat()[i], t.flat()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatricizeShapes,
    ::testing::Values(std::pair{Shape{4, 5, 6}, std::size_t{0}},
                      std::pair{Shape{4, 5, 6}, std::size_t{1}},
                      std::pair{Shape{4, 5, 6}, std::size_t{2}},
                      std::pair{Shape{3, 2, 4, 5}, std::size_t{0}},
                      std::pair{Shape{3, 2, 4, 5}, std::size_t{2}},
                      std::pair{Shape{3, 2, 4, 5}, std::size_t{3}},
                      std::pair{Shape{7}, std::size_t{0}},
                      std::pair{Shape{2, 9}, std::size_t{1}}));

TEST(DenseTensorTest, MatricizeKnownEntries) {
  // shape {2,2,2}: element (i,j,k) -> X(0)(i, j*2+k) in our convention.
  DenseTensor t(Shape{2, 2, 2});
  t.at(std::vector<index_t>{1, 0, 1}) = 5.0;
  t.at(std::vector<index_t>{0, 1, 0}) = 3.0;
  const Matrix m0 = t.matricize(0);
  EXPECT_DOUBLE_EQ(m0(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m0(0, 2), 3.0);
  // mode-1 matricization: (i,j,k) -> X(1)(j, i*2+k)
  const Matrix m1 = t.matricize(1);
  EXPECT_DOUBLE_EQ(m1(0, 3), 5.0);
  EXPECT_DOUBLE_EQ(m1(1, 0), 3.0);
}

TEST(DenseTensorTest, FromCooSumsDuplicates) {
  CooTensor x(Shape{2, 2});
  x.push_back(std::vector<index_t>{0, 1}, 1.0);
  x.push_back(std::vector<index_t>{0, 1}, 2.0);
  const DenseTensor t = DenseTensor::from_coo(x);
  EXPECT_DOUBLE_EQ(t.at(std::vector<index_t>{0, 1}), 3.0);
  EXPECT_DOUBLE_EQ(t.at(std::vector<index_t>{1, 0}), 0.0);
}

TEST(DenseTtmTest, MatchesMatricizedGemm) {
  // Mode-n TTM is U^T X(n) in matricized form: check via matricization.
  const DenseTensor x = random_dense(Shape{4, 5, 6}, 1);
  for (std::size_t mode = 0; mode < 3; ++mode) {
    const Matrix u = random_matrix(x.shape()[mode], 3, 50 + mode);
    const DenseTensor y = ht::tensor::dense_ttm(x, mode, u);
    EXPECT_EQ(y.shape()[mode], 3u);
    const Matrix yn = y.matricize(mode);
    const Matrix expected = ht::la::gemm_tn(u, x.matricize(mode));
    EXPECT_TRUE(yn.approx_equal(expected, 1e-10));
  }
}

TEST(DenseTtmTest, IdentityIsNoop) {
  const DenseTensor x = random_dense(Shape{3, 4, 2}, 2);
  const Matrix id = Matrix::identity(4);
  const DenseTensor y = ht::tensor::dense_ttm(x, 1, id);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y.flat()[i], x.flat()[i], 1e-12);
  }
}

TEST(DenseTtmTest, TtmcExceptSkipsRequestedMode) {
  const DenseTensor x = random_dense(Shape{4, 5, 6}, 3);
  std::vector<Matrix> factors;
  factors.push_back(random_matrix(4, 2, 60));
  factors.push_back(random_matrix(5, 3, 61));
  factors.push_back(random_matrix(6, 2, 62));
  const DenseTensor y = ht::tensor::dense_ttmc_except(x, 1, factors);
  EXPECT_EQ(y.shape()[0], 2u);
  EXPECT_EQ(y.shape()[1], 5u);  // untouched
  EXPECT_EQ(y.shape()[2], 2u);
}

TEST(DenseTtmTest, ModeOrderDoesNotMatter) {
  const DenseTensor x = random_dense(Shape{3, 4, 5}, 4);
  const Matrix u0 = random_matrix(3, 2, 70);
  const Matrix u2 = random_matrix(5, 2, 71);
  const DenseTensor a = ht::tensor::dense_ttm(ht::tensor::dense_ttm(x, 0, u0), 2, u2);
  const DenseTensor b = ht::tensor::dense_ttm(ht::tensor::dense_ttm(x, 2, u2), 0, u0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.flat()[i], b.flat()[i], 1e-11);
  }
}

TEST(DenseTtmTest, ShapeMismatchThrows) {
  const DenseTensor x = random_dense(Shape{3, 4}, 5);
  const Matrix u = random_matrix(5, 2, 80);
  EXPECT_THROW(ht::tensor::dense_ttm(x, 0, u), ht::Error);
  EXPECT_THROW(ht::tensor::dense_ttm(x, 2, u), ht::Error);
}

}  // namespace
