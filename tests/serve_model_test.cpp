// ServeModel and the core/reconstruct kernels: shape validation, zero-copy
// serving off an mmap'd bundle (CopyStats == 0), bit-exact agreement with
// TuckerDecomposition::reconstruct_at on both the mmap and heap load
// paths, and the slice decomposition identities every serving query relies
// on (entity_slice + score_from_slice == score; mode_vector dot factor row
// == point score).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/hooi.hpp"
#include "core/reconstruct.hpp"
#include "core/tucker_model.hpp"
#include "serve/serve_model.hpp"
#include "storage/bundle.hpp"
#include "tensor/generators.hpp"
#include "util/error.hpp"

namespace {

using ht::core::ReconstructWorkspace;
using ht::core::TuckerModel;
using ht::serve::ServeModel;
using ht::storage::CopyStats;
using ht::tensor::CooTensor;
using ht::tensor::index_t;

class TempFile {
 public:
  explicit TempFile(const std::string& suffix) {
    path_ = ::testing::TempDir() + "ht_serve_model_" + suffix;
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// One trained 3-mode model shared by all tests (HOOI runs once).
const TuckerModel& trained_model() {
  static const TuckerModel model = [] {
    CooTensor x = ht::tensor::random_zipf({30, 24, 18}, 1500,
                                          {0.8, 0.9, 0.5}, 7);
    ht::tensor::plant_low_rank_values(x, 3, 0.1, 11);
    ht::core::HooiOptions options;
    options.ranks = {5, 4, 3};
    options.max_iterations = 4;
    return TuckerModel::from_hooi(x, ht::core::hooi(x, options));
  }();
  return model;
}

std::vector<std::vector<index_t>> probe_coords(const ht::tensor::Shape& dims,
                                               std::size_t count,
                                               unsigned seed) {
  std::vector<std::vector<index_t>> coords;
  std::uint64_t s = seed * 2654435761u + 12345;
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<index_t> idx(dims.size());
    for (std::size_t n = 0; n < dims.size(); ++n) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      idx[n] = static_cast<index_t>((s >> 33) % dims[n]);
    }
    coords.push_back(std::move(idx));
  }
  return coords;
}

TEST(ServeModelTest, ValidatesShapeAgreement) {
  TuckerModel bad = trained_model();
  bad.dims[1] += 1;  // factor rows no longer match the claimed dims
  EXPECT_THROW(ServeModel{std::move(bad)}, ht::Error);

  TuckerModel no_factors = trained_model();
  no_factors.decomposition.factors.clear();
  EXPECT_THROW(ServeModel{std::move(no_factors)}, ht::Error);
}

TEST(ServeModelTest, MmapLoadIsZeroCopyAndBitExact) {
  TempFile file("zero_copy.htb");
  ht::storage::save_bundle(trained_model(), file.path());

  CopyStats::reset();
  const auto served = ServeModel::load(file.path(), /*verify=*/true);
  EXPECT_TRUE(served->is_view());
  EXPECT_EQ(CopyStats::bytes(), 0u)
      << "serving path copied tensor payload out of the mapped bundle";

  // Served answers must be bit-identical to the training-side
  // reconstruction — same kernels, same summation order.
  for (const auto& idx : probe_coords(served->dims(), 200, 3)) {
    const double train_side = trained_model().reconstruct_at(idx);
    const double serve_side = served->score(idx);
    EXPECT_EQ(train_side, serve_side);
  }
}

TEST(ServeModelTest, HeapAndMmapServeIdentically) {
  TempFile file("heap_vs_map.htb");
  ht::storage::save_bundle(trained_model(), file.path());

  const auto mapped = ServeModel::load(file.path());
  const auto copied = std::make_shared<const ServeModel>(
      ht::storage::load_bundle(file.path(), ht::storage::LoadMode::kCopy));
  EXPECT_TRUE(mapped->is_view());
  EXPECT_FALSE(copied->is_view());
  for (const auto& idx : probe_coords(mapped->dims(), 100, 5)) {
    EXPECT_EQ(mapped->score(idx), copied->score(idx));
  }
}

TEST(ServeModelTest, EntitySliceDecompositionIsExact) {
  const auto served =
      std::make_shared<const ServeModel>(TuckerModel(trained_model()));
  ReconstructWorkspace ws;
  // Any mode can play the entity. Mode 0 is the canonical contraction
  // order score() itself uses, so slice + finish is BITWISE identical;
  // other entity modes contract in a different association order and are
  // only guaranteed equal up to rounding.
  for (std::size_t mode = 0; mode < served->order(); ++mode) {
    std::vector<double> slice(served->slice_size(mode));
    for (const auto& idx : probe_coords(served->dims(), 50, 7 + mode)) {
      served->entity_slice(mode, idx[mode], slice);
      const double direct = served->score(idx);
      const double via_slice =
          served->score_from_slice(mode, slice, idx, ws);
      if (mode == 0) {
        EXPECT_EQ(direct, via_slice);
      } else {
        EXPECT_NEAR(direct, via_slice, 1e-12 * (1.0 + std::abs(direct)))
            << "entity mode " << mode;
      }
    }
  }
}

TEST(ServeModelTest, ModeVectorMatchesPointScores) {
  const auto served =
      std::make_shared<const ServeModel>(TuckerModel(trained_model()));
  ReconstructWorkspace ws;
  const std::size_t entity = 0, target = 1;
  std::vector<double> slice(served->slice_size(entity));
  std::vector<double> v(served->ranks()[target]);
  for (const auto& idx : probe_coords(served->dims(), 30, 13)) {
    served->entity_slice(entity, idx[entity], slice);
    served->mode_vector_from_slice(entity, slice, target, idx, ws, v);
    // v dot U_target(i, :) must equal the point score for every item i —
    // this identity is what makes topk() scores point-score-exact.
    for (index_t item = 0; item < served->dims()[target]; ++item) {
      double dot = 0;
      const auto row = served->factor_row(target, item);
      for (std::size_t r = 0; r < v.size(); ++r) dot += v[r] * row[r];
      std::vector<index_t> probe(idx);
      probe[target] = item;
      EXPECT_EQ(served->score(probe), dot);
    }
  }
}

TEST(ServeModelTest, ReconstructAtIsAllocationFreeAfterWarmup) {
  // The TLS workspace grows on first use; after warm-up repeated queries
  // must reuse it (we can't count allocations portably, but we can check
  // the workspace buffers stop growing and answers stay identical).
  const auto& model = trained_model();
  std::vector<index_t> idx = {3, 5, 7};
  const double first = model.reconstruct_at(idx);
  auto& ws = ReconstructWorkspace::tls();
  const std::size_t slice_cap = ws.slice.capacity();
  const std::size_t entity_cap = ws.entity.capacity();
  for (int rep = 0; rep < 100; ++rep) {
    EXPECT_EQ(model.reconstruct_at(idx), first);
  }
  EXPECT_EQ(ws.slice.capacity(), slice_cap);
  EXPECT_EQ(ws.entity.capacity(), entity_cap);
}

TEST(ServeModelTest, TwoModeAndFourModeModels) {
  // The slice machinery must handle the order-2 edge (empty `rest`) and
  // deeper tensors alike.
  for (const ht::tensor::Shape& shape :
       {ht::tensor::Shape{20, 15}, ht::tensor::Shape{10, 8, 6, 5}}) {
    CooTensor x = ht::tensor::random_zipf(
        shape, 150, std::vector<double>(shape.size(), 0.7), 21);
    ht::tensor::plant_low_rank_values(x, 2, 0.1, 22);
    ht::core::HooiOptions options;
    options.ranks.assign(shape.size(), 3);
    options.max_iterations = 2;
    auto model = TuckerModel::from_hooi(x, ht::core::hooi(x, options));
    const auto served =
        std::make_shared<const ServeModel>(std::move(model));
    ReconstructWorkspace ws;
    std::vector<double> slice(served->slice_size(0));
    for (const auto& idx : probe_coords(served->dims(), 40, 23)) {
      const double direct = served->score(idx);
      served->entity_slice(0, idx[0], slice);
      EXPECT_EQ(direct, served->score_from_slice(0, slice, idx, ws));
    }
  }
}

}  // namespace
