// Model bundle container: bit-exact save/load round trips on the heap and
// mmap paths, zero-copy verification through the CopyStats hook, CSF
// structures served from a bundle without re-sorting, kernel equivalence
// over mapped storage, and corruption/truncation rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/hooi.hpp"
#include "core/symbolic.hpp"
#include "core/ttmc.hpp"
#include "core/tucker_model.hpp"
#include "la/matrix.hpp"
#include "storage/bundle.hpp"
#include "tensor/alto.hpp"
#include "tensor/csf.hpp"
#include "tensor/generators.hpp"
#include "util/error.hpp"

namespace {

using ht::core::TuckerModel;
using ht::tensor::AltoTensor;
using ht::storage::BundleReader;
using ht::storage::CopyStats;
using ht::storage::LoadMode;
using ht::storage::load_bundle;
using ht::storage::save_bundle;
using ht::storage::SectionKind;
using ht::tensor::CooTensor;
using ht::tensor::CsfTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;

class TempFile {
 public:
  explicit TempFile(const std::string& suffix) {
    path_ = ::testing::TempDir() + "ht_bundle_test_" + suffix;
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// One trained model (with CSF trees) shared by the round-trip tests; HOOI
// runs once per process.
const TuckerModel& trained_model() {
  static const TuckerModel model = [] {
    CooTensor x = ht::tensor::random_zipf({30, 24, 18}, 1500,
                                          {0.8, 0.9, 0.5}, 7);
    ht::tensor::plant_low_rank_values(x, 3, 0.1, 11);
    ht::core::HooiOptions options;
    options.ranks = {5, 4, 3};
    options.max_iterations = 4;
    TuckerModel m = TuckerModel::from_hooi(x, ht::core::hooi(x, options));
    m.csf = std::make_shared<CsfTensor>(CsfTensor::build(x));
    m.alto = std::make_shared<AltoTensor>(AltoTensor::build(x));
    return m;
  }();
  return model;
}

const CooTensor& trained_tensor() {
  static const CooTensor x = [] {
    CooTensor t = ht::tensor::random_zipf({30, 24, 18}, 1500,
                                          {0.8, 0.9, 0.5}, 7);
    ht::tensor::plant_low_rank_values(t, 3, 0.1, 11);
    return t;
  }();
  return x;
}

void expect_models_bit_exact(const TuckerModel& a, const TuckerModel& b) {
  ASSERT_EQ(a.order(), b.order());
  EXPECT_EQ(a.dims, b.dims);
  EXPECT_EQ(a.ranks(), b.ranks());
  // Fit must survive the text meta round trip bit for bit (%.17g).
  EXPECT_EQ(a.fit, b.fit);
  EXPECT_EQ(a.provenance, b.provenance);
  for (std::size_t n = 0; n < a.order(); ++n) {
    const auto fa = a.decomposition.factors[n].flat();
    const auto fb = b.decomposition.factors[n].flat();
    ASSERT_EQ(fa.size(), fb.size());
    EXPECT_EQ(std::memcmp(fa.data(), fb.data(), fa.size() * sizeof(double)),
              0)
        << "factor " << n << " not bit-exact";
  }
  const auto ca = a.decomposition.core.flat();
  const auto cb = b.decomposition.core.flat();
  ASSERT_EQ(ca.size(), cb.size());
  EXPECT_EQ(std::memcmp(ca.data(), cb.data(), ca.size() * sizeof(double)), 0)
      << "core not bit-exact";

  ASSERT_EQ(a.has_alto(), b.has_alto());
  if (a.has_alto()) {
    const AltoTensor& aa = *a.alto;
    const AltoTensor& ab = *b.alto;
    ASSERT_EQ(aa.nnz(), ab.nnz());
    EXPECT_EQ(aa.key_bits, ab.key_bits);
    EXPECT_TRUE(aa.key_lo == ab.key_lo);
    EXPECT_TRUE(aa.key_hi == ab.key_hi);
    EXPECT_TRUE(aa.perm == ab.perm);
    EXPECT_TRUE(aa.values == ab.values);
    EXPECT_TRUE(aa.part_ptr == ab.part_ptr);
    EXPECT_TRUE(aa.part_min == ab.part_min);
    EXPECT_TRUE(aa.part_max == ab.part_max);
  }

  ASSERT_EQ(a.has_csf(), b.has_csf());
  if (!a.has_csf()) return;
  ASSERT_EQ(a.csf->order(), b.csf->order());
  for (std::size_t n = 0; n < a.csf->order(); ++n) {
    const ht::tensor::CsfTree& ta = a.csf->modes[n];
    const ht::tensor::CsfTree& tb = b.csf->modes[n];
    EXPECT_EQ(ta.level_modes, tb.level_modes);
    ASSERT_EQ(ta.levels(), tb.levels());
    for (std::size_t d = 0; d < ta.levels(); ++d) {
      EXPECT_TRUE(ta.idx[d] == tb.idx[d]) << "idx mode " << n << " level " << d;
      if (d >= 1) {
        EXPECT_TRUE(ta.ptr[d] == tb.ptr[d])
            << "ptr mode " << n << " level " << d;
      }
    }
    EXPECT_TRUE(ta.leaf_entry == tb.leaf_entry);
    EXPECT_TRUE(ta.root_leaf_ptr == tb.root_leaf_ptr);
    EXPECT_TRUE(ta.values == tb.values);
  }
}

TEST(BundleRoundTrip, HeapLoadIsBitExact) {
  TempFile tmp("heap.htb");
  save_bundle(trained_model(), tmp.path());
  const TuckerModel loaded = load_bundle(tmp.path(), LoadMode::kCopy);
  expect_models_bit_exact(trained_model(), loaded);
  // kCopy models are fully owned and mutable.
  EXPECT_FALSE(loaded.decomposition.factors[0].is_view());
  EXPECT_FALSE(loaded.decomposition.core.is_view());
}

TEST(BundleRoundTrip, MmapLoadIsBitExactAndZeroCopy) {
  TempFile tmp("mmap.htb");
  save_bundle(trained_model(), tmp.path());

  CopyStats::reset();
  const TuckerModel loaded = load_bundle(tmp.path(), LoadMode::kMap);
  // The allocation-counting hook: an mmap load copies no payload bytes —
  // every factor/core/CSF array is a view into the mapping. (O(order)
  // metadata like dims is exempt by design.)
  EXPECT_EQ(CopyStats::bytes(), 0u);
  EXPECT_EQ(CopyStats::count(), 0u);
  EXPECT_TRUE(loaded.decomposition.factors[0].is_view());
  EXPECT_TRUE(loaded.decomposition.core.is_view());
  EXPECT_TRUE(loaded.csf->modes[0].idx[0].is_view());
  // The ALTO arrays too: from_views only recomputes the O(order)
  // delinearization masks, never the per-nnz payloads.
  ASSERT_TRUE(loaded.has_alto());
  EXPECT_TRUE(loaded.alto->key_lo.is_view());
  EXPECT_TRUE(loaded.alto->perm.is_view());
  EXPECT_TRUE(loaded.alto->values.is_view());

  expect_models_bit_exact(trained_model(), loaded);
}

TEST(BundleRoundTrip, HeapLoadRecordsCopies) {
  TempFile tmp("copies.htb");
  save_bundle(trained_model(), tmp.path());
  CopyStats::reset();
  const TuckerModel loaded = load_bundle(tmp.path(), LoadMode::kCopy);
  (void)loaded;
  // Differentiation of the two paths: the heap load must have copied at
  // least the factor + core payloads.
  std::size_t payload = trained_model().decomposition.core.size();
  for (const auto& f : trained_model().decomposition.factors) {
    payload += f.size();
  }
  EXPECT_GE(CopyStats::bytes(), payload * sizeof(double));
}

TEST(BundleRoundTrip, CsfFromBundleMatchesFreshBuild) {
  // "No re-sorting" in the strongest form: the trees coming out of the
  // bundle are identical to trees built from scratch off the tensor, so
  // every structure invariant the build path guarantees holds for the
  // loaded path too.
  TempFile tmp("csf.htb");
  save_bundle(trained_model(), tmp.path());
  const TuckerModel loaded = load_bundle(tmp.path(), LoadMode::kMap);
  const CsfTensor fresh = CsfTensor::build(trained_tensor());

  ASSERT_TRUE(loaded.has_csf());
  ASSERT_EQ(loaded.csf->order(), fresh.order());
  for (std::size_t n = 0; n < fresh.order(); ++n) {
    const ht::tensor::CsfTree& lt = loaded.csf->modes[n];
    const ht::tensor::CsfTree& ft = fresh.modes[n];
    EXPECT_EQ(lt.level_modes, ft.level_modes);
    EXPECT_EQ(lt.num_leaves(), trained_tensor().nnz());
    for (std::size_t d = 0; d < ft.levels(); ++d) {
      EXPECT_TRUE(lt.idx[d] == ft.idx[d]);
      if (d >= 1) { EXPECT_TRUE(lt.ptr[d] == ft.ptr[d]); }
    }
    EXPECT_TRUE(lt.leaf_entry == ft.leaf_entry);
    EXPECT_TRUE(lt.root_leaf_ptr == ft.root_leaf_ptr);
    EXPECT_TRUE(lt.values == ft.values);
    // Invariants directly on the mapped tree: monotone ptr levels and
    // in-range leaf gather entries.
    for (std::size_t d = 1; d < lt.levels(); ++d) {
      for (std::size_t k = 1; k < lt.ptr[d].size(); ++k) {
        EXPECT_LE(lt.ptr[d][k - 1], lt.ptr[d][k]);
      }
    }
    for (nnz_t e : lt.leaf_entry) EXPECT_LT(e, trained_tensor().nnz());
  }
}

TEST(BundleRoundTrip, TtmcOverMappedCsfMatchesHeap) {
  TempFile tmp("ttmc.htb");
  save_bundle(trained_model(), tmp.path());
  const TuckerModel mapped = load_bundle(tmp.path(), LoadMode::kMap);
  const CooTensor& x = trained_tensor();
  const CsfTensor heap_csf = CsfTensor::build(x);

  const auto symbolic = ht::core::SymbolicTtmc::build(x, false);
  std::vector<ht::la::Matrix> factors;
  for (std::size_t n = 0; n < x.order(); ++n) {
    factors.push_back(mapped.decomposition.factors[n]);
    factors.back().ensure_owned();
  }
  ht::core::TtmcOptions options;
  options.kernel = ht::core::TtmcKernel::kCsf;
  for (std::size_t n = 0; n < x.order(); ++n) {
    ht::la::Matrix y_heap, y_map;
    ht::core::ttmc_mode(x, factors, n, symbolic.modes[n], y_heap, options,
                        &heap_csf.modes[n]);
    ht::core::ttmc_mode(x, factors, n, symbolic.modes[n], y_map, options,
                        &mapped.csf->modes[n]);
    ASSERT_EQ(y_heap.rows(), y_map.rows());
    ASSERT_EQ(y_heap.cols(), y_map.cols());
    for (std::size_t k = 0; k < y_heap.size(); ++k) {
      EXPECT_NEAR(y_heap.flat()[k], y_map.flat()[k], 1e-12)
          << "mode " << n << " entry " << k;
    }
  }
}

TEST(BundleRoundTrip, AltoFromBundleMatchesFreshBuild) {
  // The mapped structure must be indistinguishable from a scratch build:
  // same keys, same gather map, same partition tables — so decoding and
  // partition invariants established for the build path hold when serving.
  TempFile tmp("alto.htb");
  save_bundle(trained_model(), tmp.path());
  const TuckerModel loaded = load_bundle(tmp.path(), LoadMode::kMap);
  const AltoTensor fresh = AltoTensor::build(trained_tensor());

  ASSERT_TRUE(loaded.has_alto());
  const AltoTensor& mapped = *loaded.alto;
  ASSERT_EQ(mapped.nnz(), fresh.nnz());
  EXPECT_EQ(mapped.key_bits, fresh.key_bits);
  EXPECT_TRUE(mapped.key_lo == fresh.key_lo);
  EXPECT_TRUE(mapped.perm == fresh.perm);
  EXPECT_TRUE(mapped.values == fresh.values);
  EXPECT_TRUE(mapped.part_ptr == fresh.part_ptr);
  EXPECT_TRUE(mapped.part_min == fresh.part_min);
  EXPECT_TRUE(mapped.part_max == fresh.part_max);
  // Delinearization masks are recomputed, not stored: decode must agree.
  for (ht::tensor::nnz_t s = 0; s < fresh.nnz(); ++s) {
    for (std::size_t n = 0; n < fresh.order(); ++n) {
      ASSERT_EQ(mapped.mode_index(n, s), fresh.mode_index(n, s));
    }
  }
}

TEST(BundleRoundTrip, TtmcOverMappedAltoIsBitExactAndZeroCopy) {
  // The serve headline: TTMc straight off the mapping, bit-identical to
  // the heap-built structure, with zero payload bytes copied.
  TempFile tmp("alto_ttmc.htb");
  save_bundle(trained_model(), tmp.path());
  const TuckerModel mapped = load_bundle(tmp.path(), LoadMode::kMap);
  const CooTensor& x = trained_tensor();
  const AltoTensor heap_alto = AltoTensor::build(x);

  const auto symbolic = ht::core::SymbolicTtmc::build(x, false);
  std::vector<ht::la::Matrix> factors;
  for (std::size_t n = 0; n < x.order(); ++n) {
    factors.push_back(mapped.decomposition.factors[n]);
    factors.back().ensure_owned();
  }
  ht::core::TtmcOptions options;
  options.kernel = ht::core::TtmcKernel::kAlto;
  CopyStats::reset();
  for (std::size_t n = 0; n < x.order(); ++n) {
    ht::la::Matrix y_heap, y_map;
    ht::core::ttmc_mode(x, factors, n, symbolic.modes[n], y_heap, options,
                        nullptr, &heap_alto);
    ht::core::ttmc_mode(x, factors, n, symbolic.modes[n], y_map, options,
                        nullptr, mapped.alto.get());
    ASSERT_EQ(y_heap.rows(), y_map.rows());
    ASSERT_EQ(y_heap.cols(), y_map.cols());
    EXPECT_TRUE(y_heap.approx_equal(y_map, 0.0)) << "mode " << n;
  }
  EXPECT_EQ(CopyStats::bytes(), 0u) << "serving detached a mapped span";
}

TEST(BundleRoundTrip, ModelWithoutCsfRoundTrips) {
  TuckerModel m = trained_model();
  m.csf.reset();
  TempFile tmp("nocsf.htb");
  save_bundle(m, tmp.path());
  const TuckerModel loaded = load_bundle(tmp.path(), LoadMode::kMap);
  EXPECT_FALSE(loaded.has_csf());
  expect_models_bit_exact(m, loaded);
}

TEST(BundleRoundTrip, ModelWithoutAltoRoundTrips) {
  TuckerModel m = trained_model();
  m.alto.reset();
  TempFile tmp("noalto.htb");
  save_bundle(m, tmp.path());
  const TuckerModel loaded = load_bundle(tmp.path(), LoadMode::kMap);
  EXPECT_FALSE(loaded.has_alto());
  expect_models_bit_exact(m, loaded);
}

TEST(BundleInspect, ReportsSectionsAndMeta) {
  TempFile tmp("inspect.htb");
  save_bundle(trained_model(), tmp.path());
  const auto info = ht::storage::inspect_bundle(tmp.path());
  EXPECT_EQ(info.header.version, ht::storage::kBundleVersion);
  EXPECT_GT(info.sections.size(), 5u);
  EXPECT_GT(info.payload_bytes, 0u);
  bool saw_fit = false, saw_version = false;
  for (const auto& [key, value] : info.meta) {
    if (key == "fit") saw_fit = true;
    if (key == "prov:version") saw_version = true;
  }
  EXPECT_TRUE(saw_fit);
  EXPECT_TRUE(saw_version);
  const std::string text = ht::storage::describe_bundle(info);
  EXPECT_NE(text.find("factor"), std::string::npos);
  EXPECT_NE(text.find("core"), std::string::npos);
}

TEST(BundleIntegrity, RejectsTruncatedFile) {
  TempFile tmp("trunc.htb");
  save_bundle(trained_model(), tmp.path());
  std::ifstream in(tmp.path(), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Drop the tail (section table and part of the last payload).
  std::ofstream out(tmp.path(), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(BundleReader(tmp.path(), LoadMode::kMap), ht::IoError);
}

TEST(BundleIntegrity, RejectsFileSmallerThanHeader) {
  TempFile tmp("tiny.htb");
  std::ofstream out(tmp.path(), std::ios::binary);
  out.write("HTBNDL1", 7);
  out.close();
  EXPECT_THROW(BundleReader(tmp.path(), LoadMode::kMap), ht::IoError);
}

TEST(BundleIntegrity, RejectsBadMagic) {
  TempFile tmp("magic.htb");
  save_bundle(trained_model(), tmp.path());
  std::fstream f(tmp.path(), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(0);
  f.write("NOTHTBN1", 8);
  f.close();
  EXPECT_THROW(BundleReader(tmp.path(), LoadMode::kMap), ht::IoError);
}

TEST(BundleIntegrity, DetectsPayloadCorruptionOnCopyLoad) {
  TempFile tmp("corrupt.htb");
  save_bundle(trained_model(), tmp.path());
  // Flip one byte inside the first factor payload.
  const auto info = ht::storage::inspect_bundle(tmp.path());
  const ht::storage::SectionEntry* factor = nullptr;
  for (const auto& e : info.sections) {
    if (e.kind == static_cast<std::uint32_t>(SectionKind::kFactor)) {
      factor = &e;
      break;
    }
  }
  ASSERT_NE(factor, nullptr);
  std::fstream f(tmp.path(), std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(factor->offset + 3));
  char b;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(static_cast<std::streamoff>(factor->offset + 3));
  f.write(&b, 1);
  f.close();
  // kCopy verifies payload checksums and must reject the flip; explicit
  // verify_all catches it on the map path too.
  EXPECT_THROW(load_bundle(tmp.path(), LoadMode::kCopy), ht::IoError);
  BundleReader reader(tmp.path(), LoadMode::kMap);
  EXPECT_THROW(reader.verify_all(), ht::IoError);
}

TEST(BundleIntegrity, ViewsAreImmutableButDetachable) {
  TempFile tmp("immutable.htb");
  save_bundle(trained_model(), tmp.path());
  TuckerModel loaded = load_bundle(tmp.path(), LoadMode::kMap);
  EXPECT_THROW(static_cast<void>(loaded.decomposition.factors[0].data()),
               ht::Error);
  loaded.decomposition.factors[0].ensure_owned();
  EXPECT_NO_THROW(static_cast<void>(loaded.decomposition.factors[0].data()));
}

}  // namespace
