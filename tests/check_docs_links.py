#!/usr/bin/env python3
"""Intra-repo markdown link checker (lychee-style, stdlib only).

Scans README.md plus every markdown file under docs/ for inline links and
verifies that relative targets exist in the repository; for links into
markdown files, #fragments are checked against GitHub-slugified headings.
External schemes (http/https/mailto) are skipped — CI must not depend on
the network. Exits non-zero listing every broken link.

Usage: check_docs_links.py [--root REPO_ROOT]
Registered as the `check_docs_links` CTest and run by the `docs` CI job.
"""

import argparse
import pathlib
import re
import sys

# Inline links/images: [text](target "title"). Reference-style links are
# rare in this repo; add a second pass here if they appear.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slugification: lowercase, drop punctuation except
    hyphens/underscores, spaces to hyphens. Markdown emphasis/code markers
    are stripped before slugging."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set:
    slugs, seen = set(), {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def strip_code(text: str) -> str:
    """Remove fenced and inline code spans so example links are not checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def check_file(md: pathlib.Path, root: pathlib.Path, errors: list) -> int:
    checked = 0
    for target in LINK_RE.findall(strip_code(md.read_text(encoding="utf-8"))):
        if target.startswith(EXTERNAL):
            continue
        checked += 1
        path_part, _, fragment = target.partition("#")
        dest = md if not path_part else (md.parent / path_part).resolve()
        rel = md.relative_to(root)
        if not dest.exists():
            errors.append(f"{rel}: broken link -> {target} (no such file)")
            continue
        if path_part and root not in dest.parents and dest != root:
            errors.append(f"{rel}: link escapes the repository -> {target}")
            continue
        if fragment:
            if dest.suffix.lower() != ".md":
                errors.append(f"{rel}: fragment on non-markdown -> {target}")
            elif fragment.lower() not in heading_slugs(dest):
                errors.append(f"{rel}: broken anchor -> {target}")
    return checked


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--root", type=pathlib.Path, default=default_root)
    root = parser.parse_args().root.resolve()

    files = [root / "README.md"] + sorted((root / "docs").glob("**/*.md"))
    files = [f for f in files if f.exists()]
    if len(files) < 2:
        print(f"error: expected README.md and docs/*.md under {root}")
        return 2

    errors, checked = [], 0
    for md in files:
        checked += check_file(md, root, errors)
    for e in errors:
        print(e)
    print(f"checked {checked} intra-repo links in {len(files)} files: "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
