#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/completion.hpp"
#include "core/split.hpp"
#include "serve/query_engine.hpp"
#include "serve/serve_model.hpp"
#include "storage/bundle.hpp"
#include "tensor/generators.hpp"

namespace {

using ht::core::CompletionEval;
using ht::core::CompletionOptions;
using ht::core::SplitOptions;
using ht::core::TensorSplit;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

CooTensor sample_tensor(std::uint64_t seed, nnz_t nnz = 2000) {
  CooTensor x = ht::tensor::random_uniform(Shape{30, 25, 20}, nnz, seed);
  ht::tensor::plant_low_rank_values(x, 3, 0.1, seed ^ 0x51);
  return x;
}

SplitOptions fractions(double val, double test, std::uint64_t seed = 42) {
  SplitOptions opt;
  opt.validation_fraction = val;
  opt.test_fraction = test;
  opt.seed = seed;
  return opt;
}

TEST(SplitTest, DeterministicForSeed) {
  const CooTensor x = sample_tensor(50);
  const TensorSplit a = ht::core::split_tensor(x, fractions(0.1, 0.2, 7));
  const TensorSplit b = ht::core::split_tensor(x, fractions(0.1, 0.2, 7));
  EXPECT_EQ(a.train_ids, b.train_ids);
  EXPECT_EQ(a.validation_ids, b.validation_ids);
  EXPECT_EQ(a.test_ids, b.test_ids);

  const TensorSplit c = ht::core::split_tensor(x, fractions(0.1, 0.2, 8));
  EXPECT_NE(a.test_ids, c.test_ids);  // a different seed reshuffles
}

TEST(SplitTest, ExactPartitionOfOrdinals) {
  const CooTensor x = sample_tensor(51);
  const TensorSplit s = ht::core::split_tensor(x, fractions(0.15, 0.25, 9));

  std::vector<nnz_t> all;
  all.insert(all.end(), s.train_ids.begin(), s.train_ids.end());
  all.insert(all.end(), s.validation_ids.begin(), s.validation_ids.end());
  all.insert(all.end(), s.test_ids.begin(), s.test_ids.end());
  ASSERT_EQ(all.size(), x.nnz());
  std::sort(all.begin(), all.end());
  for (nnz_t t = 0; t < x.nnz(); ++t) {
    ASSERT_EQ(all[t], t);  // every ordinal exactly once
  }

  // Each id list is sorted ascending and the part tensors mirror them.
  EXPECT_TRUE(std::is_sorted(s.train_ids.begin(), s.train_ids.end()));
  EXPECT_TRUE(std::is_sorted(s.validation_ids.begin(),
                             s.validation_ids.end()));
  EXPECT_TRUE(std::is_sorted(s.test_ids.begin(), s.test_ids.end()));
  ASSERT_EQ(s.train.nnz(), s.train_ids.size());
  ASSERT_EQ(s.validation.nnz(), s.validation_ids.size());
  ASSERT_EQ(s.test.nnz(), s.test_ids.size());
  for (nnz_t t = 0; t < s.test.nnz(); ++t) {
    EXPECT_EQ(s.test.value(t), x.value(s.test_ids[t]));
    for (std::size_t n = 0; n < x.order(); ++n) {
      EXPECT_EQ(s.test.index(n, t), x.index(n, s.test_ids[t]));
    }
  }
}

TEST(SplitTest, FractionsWithinRounding) {
  const CooTensor x = sample_tensor(52, 1777);
  const TensorSplit s = ht::core::split_tensor(x, fractions(0.13, 0.21, 10));
  const double n = static_cast<double>(x.nnz());
  EXPECT_EQ(s.test_ids.size(),
            static_cast<std::size_t>(std::llround(0.21 * n)));
  EXPECT_EQ(s.validation_ids.size(),
            static_cast<std::size_t>(std::llround(0.13 * n)));
  EXPECT_EQ(s.train_ids.size(),
            x.nnz() - s.test_ids.size() - s.validation_ids.size());
}

TEST(SplitTest, TestSetInvariantUnderValidationFraction) {
  // Test ids are cut from the permutation prefix BEFORE validation, so the
  // same holdout scores models trained with and without early stopping.
  const CooTensor x = sample_tensor(53);
  const TensorSplit a = ht::core::split_tensor(x, fractions(0.0, 0.2, 11));
  const TensorSplit b = ht::core::split_tensor(x, fractions(0.25, 0.2, 11));
  EXPECT_EQ(a.test_ids, b.test_ids);
}

TEST(SplitTest, ZeroFractionsGiveEmptyParts) {
  const CooTensor x = sample_tensor(54, 500);
  const TensorSplit s = ht::core::split_tensor(x, fractions(0.0, 0.0, 12));
  EXPECT_EQ(s.validation.nnz(), 0u);
  EXPECT_EQ(s.test.nnz(), 0u);
  EXPECT_EQ(s.train.nnz(), x.nnz());
}

TEST(SplitTest, RejectsBadFractions) {
  const CooTensor x = sample_tensor(55, 300);
  EXPECT_THROW(ht::core::split_tensor(x, fractions(-0.1, 0.1)),
               ht::InvalidArgument);
  EXPECT_THROW(ht::core::split_tensor(x, fractions(0.1, 1.0)),
               ht::InvalidArgument);
  EXPECT_THROW(ht::core::split_tensor(x, fractions(0.6, 0.5)),
               ht::InvalidArgument);
}

// Serve-path equivalence: a completion model evaluated on the held-out set
// through the FULL serving stack (bundle save -> ServeModel::load ->
// QueryEngine::score_batch -> evaluate_predictions) must reproduce the
// train-side evaluate_model RMSE to 0 ULP. The reconstruct kernels fix the
// summation order, so the predictions are bit-identical end to end.
TEST(SplitServeTest, ServePathRmseMatchesTrainSideToZeroUlp) {
  const ht::tensor::LowRankTensor planted = ht::tensor::random_low_rank(
      Shape{40, 30, 20}, 3000, Shape{3, 3, 3}, 0.1, 56);
  const TensorSplit split =
      ht::core::split_tensor(planted.tensor, fractions(0.0, 0.2, 13));

  CompletionOptions opt;
  opt.ranks = {3, 3, 3};
  opt.max_sweeps = 8;
  opt.lambda = 0.05;
  ht::core::CompletionResult r = ht::core::tucker_complete(split.train, opt);
  const CompletionEval train_side =
      ht::core::evaluate_model(split.test, r.decomposition);

  const ht::core::TuckerModel m =
      ht::core::completion_model(split.train, std::move(r), opt);
  const std::string path =
      ::testing::TempDir() + "/split_serve_roundtrip.htb";
  ht::storage::save_bundle(m, path);

  auto served = ht::serve::ServeModel::load(path);
  ht::serve::QueryOptions qopt;
  ht::serve::QueryEngine engine(served, qopt);

  std::vector<std::vector<index_t>> queries(split.test.nnz());
  for (nnz_t t = 0; t < split.test.nnz(); ++t) {
    queries[t].resize(split.test.order());
    for (std::size_t n = 0; n < split.test.order(); ++n) {
      queries[t][n] = split.test.index(n, t);
    }
  }
  const std::vector<double> preds = engine.score_batch(queries);
  const CompletionEval serve_side =
      ht::core::evaluate_predictions(split.test, preds);

  EXPECT_EQ(serve_side.rmse, train_side.rmse);  // 0 ULP
  EXPECT_EQ(serve_side.mae, train_side.mae);
  EXPECT_EQ(serve_side.count, train_side.count);
  std::remove(path.c_str());
}

}  // namespace
