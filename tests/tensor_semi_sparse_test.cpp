// Unit tests of the shared semi-sparse TTM layer: merge-plan invariants,
// append/prepend block layouts, and golden equivalence of the materialized
// TTM chain against the nonzero-based TTMc kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/symbolic.hpp"
#include "core/ttmc.hpp"
#include "la/matrix.hpp"
#include "tensor/generators.hpp"
#include "tensor/semi_sparse.hpp"
#include "util/random.hpp"

namespace {

using ht::la::Matrix;
using ht::tensor::build_ttm_plan;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::PatternView;
using ht::tensor::SemiSparse;
using ht::tensor::Shape;
using ht::tensor::TtmPlan;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

TEST(SemiSparseTest, LiftPreservesEverything) {
  const CooTensor x = ht::tensor::random_uniform(Shape{6, 7, 8}, 60, 3);
  const SemiSparse s = SemiSparse::lift(x);
  ASSERT_EQ(s.sparse_modes, (std::vector<std::size_t>{0, 1, 2}));
  ASSERT_EQ(s.block, 1u);
  ASSERT_EQ(s.entries(), x.nnz());
  for (nnz_t e = 0; e < x.nnz(); ++e) {
    EXPECT_EQ(s.values[e], x.value(e));
    for (std::size_t n = 0; n < 3; ++n) EXPECT_EQ(s.idx[n][e], x.index(n, e));
  }
}

TEST(TtmPlanTest, InvariantsHold) {
  const CooTensor x = ht::tensor::random_fibered(Shape{10, 12, 30}, 40, 5, 7);
  const SemiSparse s = SemiSparse::lift(x);
  const TtmPlan plan =
      build_ttm_plan(PatternView::of(s), /*mode=*/2, /*prepend=*/false);

  // Slots are a permutation of the entries.
  ASSERT_EQ(plan.num_slots(), s.entries());
  std::vector<nnz_t> seen(plan.src_entry.begin(), plan.src_entry.end());
  std::sort(seen.begin(), seen.end());
  for (nnz_t e = 0; e < seen.size(); ++e) ASSERT_EQ(seen[e], e);

  // Groups are maximal runs sharing the surviving coordinates, ordered
  // lexicographically; src_row matches the contracted coordinate.
  ASSERT_EQ(plan.out_sparse_modes, (std::vector<std::size_t>{0, 1}));
  ASSERT_EQ(plan.out_idx[0].size(), plan.num_groups());
  for (std::size_t g = 0; g < plan.num_groups(); ++g) {
    ASSERT_LT(plan.group_ptr[g], plan.group_ptr[g + 1]);
    for (nnz_t k = plan.group_ptr[g]; k < plan.group_ptr[g + 1]; ++k) {
      const nnz_t e = plan.src_entry[k];
      ASSERT_EQ(s.idx[0][e], plan.out_idx[0][g]);
      ASSERT_EQ(s.idx[1][e], plan.out_idx[1][g]);
      ASSERT_EQ(plan.src_row[k], s.idx[2][e]);
    }
    if (g > 0) {
      const bool ordered =
          plan.out_idx[0][g - 1] < plan.out_idx[0][g] ||
          (plan.out_idx[0][g - 1] == plan.out_idx[0][g] &&
           plan.out_idx[1][g - 1] < plan.out_idx[1][g]);
      ASSERT_TRUE(ordered) << "groups out of order at " << g;
    }
  }
}

TEST(TtmPlanTest, EmptyPatternYieldsNoGroups) {
  const CooTensor x(Shape{4, 4, 4});
  const SemiSparse s = SemiSparse::lift(x);
  const TtmPlan plan = build_ttm_plan(PatternView::of(s), 1, false);
  EXPECT_EQ(plan.num_groups(), 0u);
  EXPECT_EQ(plan.num_slots(), 0u);
}

// Contracting every mode but n in increasing order must gather to exactly
// the compact Y(n) of the nonzero-based kernels (the MET baseline's chain).
TEST(SemiSparseTest, TtmChainMatchesTtmcMode) {
  for (const Shape& shape :
       {Shape{12, 9, 14}, Shape{7, 6, 5, 9}}) {
    const CooTensor x =
        ht::tensor::random_uniform(shape, 40 * shape.size() * shape.size(), 19);
    std::vector<index_t> ranks;
    for (std::size_t n = 0; n < shape.size(); ++n) {
      ranks.push_back(static_cast<index_t>(2 + n % 2));
    }
    std::vector<Matrix> factors;
    for (std::size_t n = 0; n < shape.size(); ++n) {
      factors.push_back(random_matrix(shape[n], ranks[n], 23 + n));
    }
    const ht::core::SymbolicTtmc sym = ht::core::SymbolicTtmc::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      SemiSparse z = SemiSparse::lift(x);
      for (std::size_t t = 0; t < x.order(); ++t) {
        if (t != n) z = ht::tensor::ttm_contract(z, t, factors[t]);
      }
      ASSERT_EQ(z.sparse_modes, (std::vector<std::size_t>{n}));
      Matrix y;
      ht::core::ttmc_mode(x, factors, n, sym.modes[n], y,
                          {ht::core::Schedule::kDynamic,
                           ht::core::TtmcKernel::kPerNnz});
      ASSERT_EQ(z.entries(), y.rows());
      ASSERT_EQ(z.block, y.cols());
      for (std::size_t r = 0; r < y.rows(); ++r) {
        ASSERT_EQ(z.idx[0][r], sym.modes[n].rows[r]);
        for (std::size_t c = 0; c < y.cols(); ++c) {
          EXPECT_NEAR(z.values[r * z.block + c], y(r, c), 1e-12)
              << "mode " << n << " row " << r << " col " << c;
        }
      }
    }
  }
}

// Contracting the last surviving mode leaves zero sort keys (every entry
// ties): the plan must collapse to one group summing all entries. For a
// 2-mode tensor the full chain is G = U0^T X U1 in [R0][R1] layout —
// checked against the dense computation. Regression guard for the shared
// lexicographic_order's zero-keys identity-permutation behavior.
TEST(SemiSparseTest, ContractingFinalModeCollapsesToOneGroup) {
  const CooTensor x = ht::tensor::random_uniform(Shape{7, 9}, 30, 41);
  const Matrix u0 = random_matrix(7, 3, 43);
  const Matrix u1 = random_matrix(9, 4, 47);
  const SemiSparse full = ht::tensor::ttm_contract(
      ht::tensor::ttm_contract(SemiSparse::lift(x), 0, u0), 1, u1);
  ASSERT_TRUE(full.sparse_modes.empty());
  ASSERT_EQ(full.entries(), 1u);
  ASSERT_EQ(full.block, 12u);
  for (std::size_t r0 = 0; r0 < 3; ++r0) {
    for (std::size_t r1 = 0; r1 < 4; ++r1) {
      double want = 0.0;
      for (nnz_t e = 0; e < x.nnz(); ++e) {
        want += x.value(e) * u0(x.index(0, e), r0) * u1(x.index(1, e), r1);
      }
      EXPECT_NEAR(full.values[r0 * 4 + r1], want, 1e-12)
          << "r0=" << r0 << " r1=" << r1;
    }
  }
}

// Prepending a factor must equal appending it in the other order: for a
// 3-mode tensor, (X x2 U2) with U1 prepended == (X x1 U1) x2 U2.
TEST(SemiSparseTest, PrependMatchesAppendInSwappedOrder) {
  const CooTensor x = ht::tensor::random_uniform(Shape{9, 8, 11}, 150, 29);
  const Matrix u1 = random_matrix(8, 3, 31);
  const Matrix u2 = random_matrix(11, 4, 37);
  const SemiSparse s = SemiSparse::lift(x);

  // Reference: contract mode 1 then mode 2, both appended -> [R1][R2].
  const SemiSparse ref =
      ht::tensor::ttm_contract(ht::tensor::ttm_contract(s, 1, u1), 2, u2);

  // Alternative: contract mode 2 (append -> [R2]), then mode 1 *prepended*
  // -> [R1][R2].
  const SemiSparse mid = ht::tensor::ttm_contract(s, 2, u2);
  const TtmPlan plan =
      build_ttm_plan(PatternView::of(mid), 1, /*prepend=*/true);
  std::vector<double> out(plan.num_groups() * mid.block * u1.cols());
  ht::tensor::ttm_apply(plan, mid.block, mid.values, u1, out);

  ASSERT_EQ(ref.entries(), plan.num_groups());
  ASSERT_EQ(ref.values.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(ref.values[i], out[i], 1e-12) << "flat index " << i;
  }
}

TEST(SemiSparseTest, SubsetApplyPicksGroups) {
  const CooTensor x = ht::tensor::random_uniform(Shape{10, 9, 8}, 120, 41);
  const Matrix u = random_matrix(8, 3, 43);
  const SemiSparse s = SemiSparse::lift(x);
  const TtmPlan plan = build_ttm_plan(PatternView::of(s), 2, false);

  std::vector<double> full(plan.num_groups() * u.cols());
  ht::tensor::ttm_apply(plan, 1, s.values, u, full);

  std::vector<std::uint32_t> positions;
  for (std::uint32_t g = 0; g < plan.num_groups(); g += 3) positions.push_back(g);
  std::vector<double> part(positions.size() * u.cols());
  ht::tensor::ttm_apply_subset(plan, 1, s.values, u, positions, part);
  for (std::size_t p = 0; p < positions.size(); ++p) {
    for (std::size_t c = 0; c < u.cols(); ++c) {
      EXPECT_EQ(part[p * u.cols() + c], full[positions[p] * u.cols() + c]);
    }
  }
}

}  // namespace
