// HOOI-level equivalence suite for the TRSVD backend layer: every backend
// must drive HOOI to the same fit as the scalar Lanczos solver across
// tensor orders 3/4/5, the kAuto cost model must resolve as documented,
// and the trsvd_factor dispatch/scatter must behave identically across
// methods (including the parallelized scatter path).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/hooi.hpp"
#include "core/rank_sweep.hpp"
#include "core/symbolic.hpp"
#include "core/trsvd.hpp"
#include "core/ttmc.hpp"
#include "la/blas.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::HooiOptions;
using ht::core::TrsvdMethod;
using ht::la::Matrix;
using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

const std::vector<TrsvdMethod> kAllBackends = {
    TrsvdMethod::kLanczos, TrsvdMethod::kGram, TrsvdMethod::kBlockLanczos,
    TrsvdMethod::kRandomized, TrsvdMethod::kAuto};

CooTensor planted_tensor(const Shape& shape, std::size_t nnz, int rank,
                         std::uint64_t seed) {
  std::vector<double> skews(shape.size(), 0.5);
  CooTensor x = ht::tensor::random_zipf(shape, nnz, skews, seed);
  ht::tensor::plant_low_rank_values(x, rank, 0.1, seed + 1);
  return x;
}

struct OrderCase {
  Shape shape;
  std::size_t nnz;
  index_t rank;
};

class BackendsReachSameFit : public ::testing::TestWithParam<OrderCase> {};

TEST_P(BackendsReachSameFit, AcrossOrders) {
  const auto& [shape, nnz, rank] = GetParam();
  const CooTensor x = planted_tensor(shape, nnz, rank, 77);
  const std::vector<index_t> ranks(x.order(), rank);

  double lanczos_fit = 0.0;
  for (const TrsvdMethod method : kAllBackends) {
    HooiOptions opt;
    opt.ranks = ranks;
    opt.max_iterations = 3;
    opt.fit_tolerance = 0.0;
    opt.trsvd_method = method;
    const auto result = ht::core::hooi(x, opt);
    if (method == TrsvdMethod::kLanczos) {
      lanczos_fit = result.final_fit();
      EXPECT_GT(lanczos_fit, 0.01);  // the planted structure is recoverable
    } else if (method == TrsvdMethod::kRandomized) {
      // The fixed-budget sketch perturbs each sweep's subspace at its
      // accuracy level, and ALS may settle in a neighboring basin — in
      // either direction (the sketch sometimes finds a *better* fit, as
      // order 4 here does). Equivalence contract: no regression beyond ALS
      // fit-tolerance grade.
      EXPECT_GT(result.final_fit(), lanczos_fit - 5e-4);
    } else {
      // Krylov/Gram backends iterate the same problem to tolerance and
      // must track the scalar solver tightly.
      EXPECT_NEAR(result.final_fit(), lanczos_fit, 1e-7)
          << "method " << ht::core::trsvd_method_name(method);
    }
    // HOOI's fit formula requires orthonormal factors whatever the backend.
    for (const auto& f : result.decomposition.factors) {
      const Matrix g = ht::la::gemm_tn(f, f);
      for (std::size_t i = 0; i < g.rows(); ++i) {
        for (std::size_t j = 0; j < g.cols(); ++j) {
          EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-8)
              << ht::core::trsvd_method_name(method);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, BackendsReachSameFit,
    ::testing::Values(OrderCase{{40, 32, 24}, 2500, 4},
                      OrderCase{{14, 12, 10, 9}, 1800, 3},
                      OrderCase{{9, 8, 7, 6, 5}, 1200, 2}));

TEST(TrsvdFactorDispatch, AllBackendsMatchGramOnCompactProblem) {
  // A tall/skinny compact Y with a well-separated planted spectrum.
  ht::Rng rng(5);
  Matrix u(800, 6), v(20, 6);
  for (auto& x : u.flat()) x = rng.normal();
  for (auto& x : v.flat()) x = rng.normal();
  Matrix y(800, 20);
  for (std::size_t i = 0; i < 800; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      double s = 0;
      for (std::size_t k = 0; k < 6; ++k) {
        s += u(i, k) * v(j, k) * std::pow(0.5, k);
      }
      y(i, j) = s;
    }
  }
  std::vector<index_t> rows(800);
  for (std::size_t r = 0; r < 800; ++r) rows[r] = static_cast<index_t>(2 * r);

  const auto ref = ht::core::trsvd_factor(y, rows, 1600, 4,
                                          TrsvdMethod::kGram);
  for (const TrsvdMethod method :
       {TrsvdMethod::kLanczos, TrsvdMethod::kBlockLanczos,
        TrsvdMethod::kRandomized}) {
    const auto got = ht::core::trsvd_factor(y, rows, 1600, 4, method);
    EXPECT_EQ(got.method_used, method);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(got.sigma[i], ref.sigma[i], 1e-6 * ref.sigma[0])
          << ht::core::trsvd_method_name(method) << " sigma_" << i;
    }
    // Scatter invariants: compact rows land at the mapped positions (the
    // parallel scatter path: 800*4 >= the parallel threshold), odd rows
    // stay zero, and compact_u mirrors the scattered rows.
    ASSERT_EQ(got.factor.rows(), 1600u);
    for (std::size_t r = 0; r < 800; ++r) {
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(got.factor(2 * r, j), got.compact_u(r, j));
        EXPECT_DOUBLE_EQ(got.factor(2 * r + 1, j), 0.0);
      }
    }
  }
}

TEST(TrsvdAutoModel, ResolvesAsDocumented) {
  const ht::la::TrsvdOptions loose{.tol = 1e-7};
  const ht::la::TrsvdOptions tight{.tol = 1e-12};

  // Explicit methods pass through untouched.
  for (const TrsvdMethod m :
       {TrsvdMethod::kLanczos, TrsvdMethod::kGram, TrsvdMethod::kBlockLanczos,
        TrsvdMethod::kRandomized}) {
    EXPECT_EQ(ht::core::resolve_trsvd_method(m, 1000000, 100, 10, loose), m);
  }

  // Small problems stay on the scalar solver.
  EXPECT_EQ(ht::core::resolve_trsvd_method(TrsvdMethod::kAuto, 1500, 16, 4,
                                           loose),
            TrsvdMethod::kLanczos);

  // Huge-mode problems at ALS tolerances go to the randomized backend
  // (fewest passes over Y(n), the measured winner on the ablation arm)...
  EXPECT_EQ(ht::core::resolve_trsvd_method(TrsvdMethod::kAuto, 1000000, 100,
                                           10, loose),
            TrsvdMethod::kRandomized);
  // ...and tight tolerances need the iterate-to-tolerance block solver.
  EXPECT_EQ(ht::core::resolve_trsvd_method(TrsvdMethod::kAuto, 1000000, 100,
                                           10, tight),
            TrsvdMethod::kBlockLanczos);

  // The cost model ranks both blocked backends far below the scalar
  // solver's 2*steps width-1 passes on the huge problem.
  const double lanczos_cost = ht::core::trsvd_method_cost(
      TrsvdMethod::kLanczos, 1000000, 100, 10, loose);
  for (const TrsvdMethod m :
       {TrsvdMethod::kRandomized, TrsvdMethod::kBlockLanczos}) {
    EXPECT_LT(ht::core::trsvd_method_cost(m, 1000000, 100, 10, loose),
              0.5 * lanczos_cost);
  }
}

TEST(TrsvdMethodNames, ParseAndFormatRoundTrip) {
  for (const TrsvdMethod m : kAllBackends) {
    const auto parsed =
        ht::core::parse_trsvd_method(ht::core::trsvd_method_name(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_EQ(ht::core::parse_trsvd_method("block-lanczos"),
            TrsvdMethod::kBlockLanczos);
  EXPECT_EQ(ht::core::parse_trsvd_method("randomized"),
            TrsvdMethod::kRandomized);
  EXPECT_FALSE(ht::core::parse_trsvd_method("krylov").has_value());
}

TEST(RankSweepBackends, AutoSweepMatchesLanczosSweep) {
  // The backend knob rides through rank_sweep's shared-symbolic workflow.
  const CooTensor x = planted_tensor({30, 24, 20}, 2000, 4, 99);
  const std::vector<std::vector<index_t>> candidates = {
      {2, 2, 2}, {4, 4, 4}};

  HooiOptions base;
  base.max_iterations = 2;
  base.fit_tolerance = 0.0;
  const auto sweep_lanczos = ht::core::rank_sweep(x, candidates, base);

  base.trsvd_method = TrsvdMethod::kAuto;
  const auto sweep_auto = ht::core::rank_sweep(x, candidates, base);

  ASSERT_EQ(sweep_lanczos.entries.size(), sweep_auto.entries.size());
  for (std::size_t i = 0; i < sweep_lanczos.entries.size(); ++i) {
    EXPECT_NEAR(sweep_auto.entries[i].fit, sweep_lanczos.entries[i].fit, 1e-6);
  }
}

TEST(HooiBackends, DeterministicAcrossRuns) {
  const CooTensor x = planted_tensor({25, 20, 15}, 1500, 3, 11);
  for (const TrsvdMethod method :
       {TrsvdMethod::kBlockLanczos, TrsvdMethod::kRandomized}) {
    HooiOptions opt;
    opt.ranks = {3, 3, 3};
    opt.max_iterations = 2;
    opt.trsvd_method = method;
    const auto a = ht::core::hooi(x, opt);
    const auto b = ht::core::hooi(x, opt);
    ASSERT_EQ(a.fits.size(), b.fits.size());
    for (std::size_t i = 0; i < a.fits.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.fits[i], b.fits[i])
          << ht::core::trsvd_method_name(method);
    }
  }
}

}  // namespace
