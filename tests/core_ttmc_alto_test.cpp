// Golden equivalence of the ALTO linearized TTMc kernel against the
// per-nnz, fiber-factored, and CSF kernels across orders and entry points,
// HOOI fit equivalence, bitwise thread-count determinism, the degrade
// chain when no structure is in hand, and the budget-driven kAuto trade
// between the CSF forest and the single linearized structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hooi.hpp"
#include "core/rank_sweep.hpp"
#include "core/symbolic.hpp"
#include "core/ttmc.hpp"
#include "dist/dist_hooi.hpp"
#include "la/matrix.hpp"
#include "parallel/thread_info.hpp"
#include "tensor/alto.hpp"
#include "tensor/csf.hpp"
#include "tensor/generators.hpp"
#include "util/random.hpp"

namespace {

using ht::core::Schedule;
using ht::core::SymbolicTtmc;
using ht::core::TtmcKernel;
using ht::core::TtmcOptions;
using ht::la::Matrix;
using ht::tensor::AltoTensor;
using ht::tensor::CooTensor;
using ht::tensor::CsfTensor;
using ht::tensor::index_t;
using ht::tensor::Shape;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  ht::Rng rng(seed);
  Matrix a(m, n);
  for (auto& v : a.flat()) v = rng.uniform(-1.0, 1.0);
  return a;
}

std::vector<Matrix> random_factors(const Shape& shape,
                                   const std::vector<index_t>& ranks,
                                   std::uint64_t seed) {
  std::vector<Matrix> f;
  for (std::size_t n = 0; n < shape.size(); ++n) {
    f.push_back(random_matrix(shape[n], ranks[n], seed + n));
  }
  return f;
}

// The ALTO kernel accumulates per partition in slot order and merges
// staging rows in partition order — a different association than any other
// kernel — so equivalence is to a tight absolute tolerance.
constexpr double kTol = 1e-11;

struct AltoCase {
  std::string name;
  CooTensor tensor;
  std::vector<index_t> ranks;
};

std::vector<AltoCase> equivalence_cases() {
  std::vector<AltoCase> cases;
  cases.push_back({"order3_fibered",
                   ht::tensor::random_fibered(Shape{40, 30, 50}, 300, 6, 11),
                   {4, 3, 5}});
  cases.push_back({"order3_scattered",
                   ht::tensor::random_uniform(Shape{40, 30, 50}, 800, 13),
                   {4, 3, 5}});
  cases.push_back({"order3_multipart",
                   ht::tensor::random_uniform(Shape{60, 50, 40}, 30000, 41),
                   {4, 4, 4}});
  cases.push_back({"order4_fibered",
                   ht::tensor::random_fibered(Shape{15, 12, 10, 40}, 250, 5, 17),
                   {3, 2, 4, 3}});
  cases.push_back({"order4_scattered",
                   ht::tensor::random_uniform(Shape{15, 12, 10, 40}, 700, 19),
                   {3, 2, 4, 3}});
  cases.push_back({"order5_fibered",
                   ht::tensor::random_fibered(Shape{8, 7, 6, 5, 20}, 150, 4, 23),
                   {2, 2, 2, 2, 3}});
  return cases;
}

TEST(AltoTtmcTest, MatchesOtherKernelsFullModeAllSchedules) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const auto factors = random_factors(x.shape(), c.ranks, 31);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    const CsfTensor csf = CsfTensor::build(x);
    const AltoTensor alto = AltoTensor::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
        Matrix y_nnz, y_csf, y_alto;
        ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_nnz,
                            {s, TtmcKernel::kPerNnz});
        ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_csf,
                            {s, TtmcKernel::kCsf}, &csf.modes[n]);
        ht::core::ttmc_mode(x, factors, n, sym.modes[n], y_alto,
                            {s, TtmcKernel::kAlto}, nullptr, &alto);
        ASSERT_EQ(y_nnz.rows(), y_alto.rows());
        ASSERT_EQ(y_nnz.cols(), y_alto.cols());
        EXPECT_TRUE(y_nnz.approx_equal(y_alto, kTol))
            << c.name << " mode " << n << " vs per-nnz, schedule "
            << (s == Schedule::kDynamic ? "dynamic" : "static");
        EXPECT_TRUE(y_csf.approx_equal(y_alto, kTol))
            << c.name << " mode " << n << " vs csf";
      }
    }
  }
}

TEST(AltoTtmcTest, MatchesPerNnzSubsetPath) {
  for (const auto& c : equivalence_cases()) {
    const auto& x = c.tensor;
    const auto factors = random_factors(x.shape(), c.ranks, 37);
    const SymbolicTtmc sym = SymbolicTtmc::build(x);
    const AltoTensor alto = AltoTensor::build(x);
    for (std::size_t n = 0; n < x.order(); ++n) {
      // Every other compact row, as the coarse-grain owners would request.
      std::vector<std::uint32_t> positions;
      for (std::uint32_t p = 0; p < sym.modes[n].num_rows(); p += 2) {
        positions.push_back(p);
      }
      for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
        Matrix y_nnz, y_alto;
        ht::core::ttmc_mode_subset(x, factors, n, sym.modes[n], positions,
                                   y_nnz, {s, TtmcKernel::kPerNnz});
        ht::core::ttmc_mode_subset(x, factors, n, sym.modes[n], positions,
                                   y_alto, {s, TtmcKernel::kAlto}, nullptr,
                                   &alto);
        EXPECT_TRUE(y_nnz.approx_equal(y_alto, kTol))
            << c.name << " mode " << n;
      }
    }
  }
}

TEST(AltoTtmcTest, AltoRequestWithoutStructureDegradesExactly) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 200, 5, 43);
  const auto factors = random_factors(x.shape(), {3, 3, 3}, 47);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  const CsfTensor csf = CsfTensor::build(x);
  // Degrade chain: alto -> csf -> fiber -> per-nnz, by what's in hand.
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym.modes[0], 3,
                                           {.kernel = TtmcKernel::kAlto},
                                           &csf.modes[0]),
            TtmcKernel::kCsf);
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym.modes[0], 3,
                                           {.kernel = TtmcKernel::kAlto}),
            TtmcKernel::kFiberFactored);
  const SymbolicTtmc bare = SymbolicTtmc::build(x, /*with_fibers=*/false);
  EXPECT_EQ(ht::core::ttmc_selected_kernel(bare.modes[0], 3,
                                           {.kernel = TtmcKernel::kAlto}),
            TtmcKernel::kPerNnz);
  // A kAlto request without the structure runs the degraded kernel exactly.
  Matrix y_fib, y_alto;
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y_fib,
                      {Schedule::kDynamic, TtmcKernel::kFiberFactored});
  ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y_alto,
                      {Schedule::kDynamic, TtmcKernel::kAlto});
  EXPECT_TRUE(y_fib.approx_equal(y_alto, 0.0));  // same kernel ran
}

TEST(AltoTtmcTest, AutoSelectionAndBudgetTrade) {
  // In-cache tensor: kAuto never picks kAlto even with the structure in
  // hand (the flat kernels' per-row constants win), and without a budget
  // ttmc_wants_alto stays quiet under kAuto.
  const CooTensor small =
      ht::tensor::random_uniform(Shape{200, 200, 200}, 500, 47);
  const SymbolicTtmc sym_small = SymbolicTtmc::build(small);
  const AltoTensor alto_small = AltoTensor::build(small);
  EXPECT_EQ(ht::core::ttmc_selected_kernel(sym_small.modes[0], 3, {}, nullptr,
                                           &alto_small),
            TtmcKernel::kPerNnz);
  EXPECT_FALSE(ht::core::ttmc_wants_alto(sym_small, small.shape(), {}));
  // Explicit request always builds/uses the structure (budget ignored).
  EXPECT_TRUE(ht::core::ttmc_wants_alto(sym_small, small.shape(),
                                        {.kernel = TtmcKernel::kAlto}));
  // ...unless the shape cannot be linearized at all.
  const Shape too_wide(5, index_t{1u << 30});
  SymbolicTtmc fake = sym_small;
  fake.modes.resize(5, sym_small.modes[0]);
  EXPECT_FALSE(ht::core::ttmc_wants_alto(fake, too_wide,
                                         {.kernel = TtmcKernel::kAlto}));

  // Out-of-cache nnz (the streaming regime): with no budget kAuto wants the
  // CSF forest; squeeze the budget between the two estimates and the trade
  // flips to the single linearized structure; squeeze below both and
  // neither is built.
  const std::size_t big_nnz = 1u << 20;  // * (16 + 12) B > 24 MiB
  const std::size_t order = 3;
  const Shape big_shape{4096, 4096, 4096};
  const double forest = ht::core::csf_forest_bytes_estimate(big_nnz, order);
  const double linearized =
      ht::core::alto_bytes_estimate(big_nnz, big_shape);
  EXPECT_LE(linearized, 0.5 * forest) << "the memory headline";
  // Synthesize the symbolic statistics (streaming is nnz-driven).
  SymbolicTtmc sym_big;
  sym_big.modes.resize(order);
  for (auto& m : sym_big.modes) {
    m.nnz_order.assign(big_nnz, 0);
    m.rows = {0};
    m.row_ptr = {0, big_nnz};
  }
  TtmcOptions no_budget;
  EXPECT_TRUE(ht::core::ttmc_wants_csf(sym_big, no_budget));
  EXPECT_FALSE(ht::core::ttmc_wants_alto(sym_big, big_shape, no_budget));
  TtmcOptions squeezed;
  squeezed.structure_budget_bytes = 0.5 * (forest + linearized);
  EXPECT_FALSE(ht::core::ttmc_wants_csf(sym_big, squeezed));
  EXPECT_TRUE(ht::core::ttmc_wants_alto(sym_big, big_shape, squeezed));
  TtmcOptions starved;
  starved.structure_budget_bytes = 0.5 * linearized;
  EXPECT_FALSE(ht::core::ttmc_wants_csf(sym_big, starved));
  EXPECT_FALSE(ht::core::ttmc_wants_alto(sym_big, big_shape, starved));
}

TEST(AltoTtmcTest, DeterministicAcrossThreadCounts) {
  // Phase 1 accumulates each partition on a single thread in slot order;
  // phase 2 merges partitions in increasing order with one writer per
  // output row: bitwise identical for any thread count, both schedules.
  // The tensor spans several partitions so the merge order matters.
  const CooTensor x =
      ht::tensor::random_uniform(Shape{60, 50, 40}, 30000, 61);
  const auto factors = random_factors(x.shape(), {4, 3, 5}, 67);
  const SymbolicTtmc sym = SymbolicTtmc::build(x);
  const AltoTensor alto = AltoTensor::build(x);
  for (const Schedule s : {Schedule::kDynamic, Schedule::kStatic}) {
    Matrix y1, y4;
    {
      ht::parallel::ThreadScope threads(1);
      ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y1,
                          {s, TtmcKernel::kAlto}, nullptr, &alto);
    }
    {
      ht::parallel::ThreadScope threads(4);
      ht::core::ttmc_mode(x, factors, 0, sym.modes[0], y4,
                          {s, TtmcKernel::kAlto}, nullptr, &alto);
    }
    EXPECT_TRUE(y1.approx_equal(y4, 0.0));
  }
}

TEST(AltoTtmcTest, HooiConvergesIdenticallyUnderAltoKernel) {
  for (const Shape& shape : {Shape{25, 20, 40}, Shape{12, 10, 8, 25}}) {
    const CooTensor x = ht::tensor::random_fibered(shape, 300, 5, 53);
    ht::core::HooiOptions base;
    base.ranks.assign(x.order(), 3);
    base.max_iterations = 3;
    base.fit_tolerance = 0.0;

    ht::core::HooiOptions per_nnz = base;
    per_nnz.ttmc_kernel = TtmcKernel::kPerNnz;
    ht::core::HooiOptions with_alto = base;
    with_alto.ttmc_kernel = TtmcKernel::kAlto;

    const auto a = ht::core::hooi(x, per_nnz);
    const auto b = ht::core::hooi(x, with_alto);
    ASSERT_EQ(a.fits.size(), b.fits.size()) << x.order() << "-mode";
    for (std::size_t i = 0; i < a.fits.size(); ++i) {
      EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8) << "sweep " << i;
    }

    // Prebuilt structure through the fully-preprocessed overload: same run.
    const SymbolicTtmc sym = SymbolicTtmc::build(x, /*with_fibers=*/false);
    const AltoTensor alto = AltoTensor::build(x);
    const auto c =
        ht::core::hooi(x, with_alto, sym, nullptr, nullptr, &alto);
    ASSERT_EQ(b.fits.size(), c.fits.size());
    for (std::size_t i = 0; i < b.fits.size(); ++i) {
      EXPECT_NEAR(b.fits[i], c.fits[i], 1e-8) << "sweep " << i;
    }
  }
}

TEST(AltoTtmcTest, RankSweepReusesStructureAcrossGrid) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 300, 5, 71);
  ht::core::HooiOptions base;
  base.max_iterations = 2;
  base.ttmc_kernel = TtmcKernel::kAlto;
  const std::vector<std::vector<index_t>> grid = {{2, 2, 2}, {3, 3, 3}};
  const auto swept = ht::core::rank_sweep(x, grid, base);
  ASSERT_EQ(swept.entries.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ht::core::HooiOptions o = base;
    o.ranks = grid[i];
    const auto solo = ht::core::hooi(x, o);
    EXPECT_NEAR(swept.entries[i].fit, solo.final_fit(), 1e-10);
  }
  // The winning model carries the sweep's linearized structure.
  ASSERT_TRUE(swept.best_model.has_value());
  EXPECT_TRUE(swept.best_model->has_alto());
  EXPECT_EQ(swept.best_model->alto->nnz(), x.nnz());
}

TEST(AltoTtmcTest, DistHooiMatchesUnderAltoKernelBothGrains) {
  const CooTensor x = ht::tensor::random_fibered(Shape{25, 20, 40}, 250, 5, 59);
  for (const auto grain : {ht::dist::Grain::kCoarse, ht::dist::Grain::kFine}) {
    ht::dist::DistHooiOptions base;
    base.ranks = {3, 3, 3};
    base.max_iterations = 2;
    base.num_ranks = 4;
    base.grain = grain;  // coarse exercises the ALTO subset path

    ht::dist::DistHooiOptions per_nnz = base;
    per_nnz.ttmc_kernel = TtmcKernel::kPerNnz;
    ht::dist::DistHooiOptions with_alto = base;
    with_alto.ttmc_kernel = TtmcKernel::kAlto;

    const auto a = ht::dist::dist_hooi(x, per_nnz);
    const auto b = ht::dist::dist_hooi(x, with_alto);
    ASSERT_EQ(a.fits.size(), b.fits.size());
    for (std::size_t i = 0; i < a.fits.size(); ++i) {
      EXPECT_NEAR(a.fits[i], b.fits[i], 1e-8)
          << (grain == ht::dist::Grain::kCoarse ? "coarse" : "fine")
          << " sweep " << i;
    }
  }
}

}  // namespace
