#include <gtest/gtest.h>

#include <vector>

#include "tensor/coo_tensor.hpp"

namespace {

using ht::tensor::CooTensor;
using ht::tensor::index_t;
using ht::tensor::nnz_t;
using ht::tensor::Shape;

CooTensor small3() {
  CooTensor x(Shape{3, 4, 5});
  x.push_back(std::vector<index_t>{0, 1, 2}, 1.5);
  x.push_back(std::vector<index_t>{2, 3, 4}, -2.0);
  x.push_back(std::vector<index_t>{0, 0, 0}, 3.0);
  return x;
}

TEST(CooTensorTest, ConstructionBasics) {
  const CooTensor x = small3();
  EXPECT_EQ(x.order(), 3u);
  EXPECT_EQ(x.nnz(), 3u);
  EXPECT_EQ(x.dim(1), 4u);
  EXPECT_FALSE(x.empty());
  EXPECT_EQ(x.summary(), "3-mode 3x4x5, 3 nnz");
}

TEST(CooTensorTest, RejectsBadShape) {
  EXPECT_THROW(CooTensor(Shape{}), ht::Error);
  EXPECT_THROW(CooTensor(Shape{3, 0, 5}), ht::Error);
}

TEST(CooTensorTest, PushBackValidatesBounds) {
  CooTensor x(Shape{2, 2});
  EXPECT_THROW(x.push_back(std::vector<index_t>{2, 0}, 1.0), ht::Error);
  EXPECT_THROW(x.push_back(std::vector<index_t>{0}, 1.0), ht::Error);
  EXPECT_NO_THROW(x.push_back(std::vector<index_t>{1, 1}, 1.0));
}

TEST(CooTensorTest, SortLexicographic) {
  CooTensor x = small3();
  x.sort_lexicographic();
  EXPECT_EQ(x.index(0, 0), 0u);
  EXPECT_EQ(x.index(1, 0), 0u);
  EXPECT_EQ(x.index(2, 0), 0u);
  EXPECT_DOUBLE_EQ(x.value(0), 3.0);
  EXPECT_EQ(x.index(0, 2), 2u);
  EXPECT_DOUBLE_EQ(x.value(2), -2.0);
}

TEST(CooTensorTest, SumDuplicatesMerges) {
  CooTensor x(Shape{2, 2});
  x.push_back(std::vector<index_t>{0, 1}, 1.0);
  x.push_back(std::vector<index_t>{1, 0}, 2.0);
  x.push_back(std::vector<index_t>{0, 1}, 4.0);
  x.push_back(std::vector<index_t>{0, 1}, -1.0);
  x.sum_duplicates();
  EXPECT_EQ(x.nnz(), 2u);
  // sorted: (0,1)=4, (1,0)=2
  EXPECT_DOUBLE_EQ(x.value(0), 4.0);
  EXPECT_DOUBLE_EQ(x.value(1), 2.0);
}

TEST(CooTensorTest, SumDuplicatesOnEmptyIsNoop) {
  CooTensor x(Shape{2, 2});
  EXPECT_NO_THROW(x.sum_duplicates());
  EXPECT_EQ(x.nnz(), 0u);
}

TEST(CooTensorTest, Norm2Squared) {
  const CooTensor x = small3();
  EXPECT_DOUBLE_EQ(x.norm2_squared(), 1.5 * 1.5 + 4.0 + 9.0);
}

TEST(CooTensorTest, SliceNnzHistogram) {
  const CooTensor x = small3();
  const auto h0 = x.slice_nnz(0);
  ASSERT_EQ(h0.size(), 3u);
  EXPECT_EQ(h0[0], 2u);
  EXPECT_EQ(h0[1], 0u);
  EXPECT_EQ(h0[2], 1u);
  const auto h2 = x.slice_nnz(2);
  EXPECT_EQ(h2[0], 1u);
  EXPECT_EQ(h2[4], 1u);
}

TEST(CooTensorTest, SelectSubset) {
  const CooTensor x = small3();
  const std::vector<nnz_t> pick = {2, 0};
  const CooTensor y = x.select(pick);
  EXPECT_EQ(y.nnz(), 2u);
  EXPECT_DOUBLE_EQ(y.value(0), 3.0);
  EXPECT_DOUBLE_EQ(y.value(1), 1.5);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(CooTensorTest, SelectRejectsBadOrdinal) {
  const CooTensor x = small3();
  const std::vector<nnz_t> pick = {7};
  EXPECT_THROW(x.select(pick), ht::Error);
}

TEST(CooTensorTest, ValidatePassesOnGoodTensor) {
  EXPECT_NO_THROW(small3().validate());
}

TEST(CooTensorTest, SortIsStableUnderValues) {
  // Two entries at the same coordinate keep both until sum_duplicates.
  CooTensor x(Shape{2, 2});
  x.push_back(std::vector<index_t>{1, 1}, 1.0);
  x.push_back(std::vector<index_t>{1, 1}, 2.0);
  x.sort_lexicographic();
  EXPECT_EQ(x.nnz(), 2u);
  EXPECT_DOUBLE_EQ(x.value(0) + x.value(1), 3.0);
}

TEST(CooTensorTest, ReserveDoesNotChangeContents) {
  CooTensor x = small3();
  x.reserve(1000);
  EXPECT_EQ(x.nnz(), 3u);
}

TEST(CooTensorTest, OneModeTensorWorks) {
  CooTensor x(Shape{10});
  x.push_back(std::vector<index_t>{3}, 1.0);
  x.push_back(std::vector<index_t>{9}, 2.0);
  EXPECT_EQ(x.order(), 1u);
  EXPECT_EQ(x.nnz(), 2u);
  EXPECT_EQ(x.slice_nnz(0)[3], 1u);
}

}  // namespace
