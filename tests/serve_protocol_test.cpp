// Wire protocol and dispatcher: request parsing, %.17g double round-trip,
// dispatcher responses against a live handle (including engine rebuild on
// hot swap), and a loopback SocketServer end-to-end exchange.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/hooi.hpp"
#include "core/tucker_model.hpp"
#include "serve/dispatcher.hpp"
#include "serve/model_handle.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_model.hpp"
#include "tensor/generators.hpp"

namespace {

using ht::core::TuckerModel;
using ht::serve::Dispatcher;
using ht::serve::DispatcherHooks;
using ht::serve::ModelHandle;
using ht::serve::QueryOptions;
using ht::serve::Request;
using ht::serve::RequestType;
using ht::serve::ServeModel;
using ht::tensor::CooTensor;
using ht::tensor::index_t;

std::shared_ptr<const ServeModel> tiny_model() {
  static const std::shared_ptr<const ServeModel> model = [] {
    CooTensor x = ht::tensor::random_zipf({12, 9, 6}, 400, {0.8, 0.8, 0.5},
                                          31);
    ht::tensor::plant_low_rank_values(x, 2, 0.1, 32);
    ht::core::HooiOptions options;
    options.ranks = {3, 3, 2};
    options.max_iterations = 2;
    return std::make_shared<const ServeModel>(
        TuckerModel::from_hooi(x, ht::core::hooi(x, options)));
  }();
  return model;
}

TEST(ProtocolTest, ParsesEveryRequestKind) {
  EXPECT_EQ(ht::serve::parse_request("PING").type, RequestType::kPing);
  EXPECT_EQ(ht::serve::parse_request("  INFO  ").type, RequestType::kInfo);
  EXPECT_EQ(ht::serve::parse_request("STATS").type, RequestType::kStats);
  EXPECT_EQ(ht::serve::parse_request("RELOAD").type, RequestType::kReload);
  EXPECT_EQ(ht::serve::parse_request("SHUTDOWN").type,
            RequestType::kShutdown);
  EXPECT_EQ(ht::serve::parse_request("QUIT").type, RequestType::kQuit);

  const Request score = ht::serve::parse_request("SCORE 3 17 5");
  ASSERT_EQ(score.type, RequestType::kScore);
  ASSERT_EQ(score.queries.size(), 1u);
  EXPECT_EQ(score.queries[0], (std::vector<index_t>{3, 17, 5}));

  const Request batch = ht::serve::parse_request("SCOREB 1,2,3;4,5,6");
  ASSERT_EQ(batch.type, RequestType::kScoreBatch);
  ASSERT_EQ(batch.queries.size(), 2u);
  EXPECT_EQ(batch.queries[1], (std::vector<index_t>{4, 5, 6}));

  const Request topk = ht::serve::parse_request("TOPK 7 10 2");
  ASSERT_EQ(topk.type, RequestType::kTopk);
  EXPECT_EQ(topk.entity, 7u);
  EXPECT_EQ(topk.k, 10u);
  EXPECT_EQ(topk.rest, (std::vector<index_t>{2}));
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  for (const char* bad :
       {"", "   ", "FROB", "SCORE", "SCORE 1 x 3", "SCORE -1 2 3",
        "SCOREB", "SCOREB 1,2,;3", "TOPK", "TOPK 5", "TOPK 5 0",
        "TOPK x 3", "SCORE 99999999999"}) {
    const Request r = ht::serve::parse_request(bad);
    EXPECT_EQ(r.type, RequestType::kInvalid) << "input: '" << bad << "'";
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(ProtocolTest, DoubleRoundTripsTheWireBitExactly) {
  for (const double v : {0.0, -0.0, 1.0 / 3.0, -2.718281828459045e-12,
                         123456789.123456789}) {
    const std::string line = ht::serve::format_value(v);
    ASSERT_TRUE(ht::serve::response_ok(line));
    const double parsed = std::strtod(line.c_str() + 3, nullptr);
    EXPECT_EQ(std::memcmp(&parsed, &v, sizeof v), 0) << line;
  }
}

TEST(ProtocolTest, ResponseOkDiscriminates) {
  EXPECT_TRUE(ht::serve::response_ok("OK"));
  EXPECT_TRUE(ht::serve::response_ok("OK pong"));
  EXPECT_FALSE(ht::serve::response_ok("ERR nope"));
  EXPECT_FALSE(ht::serve::response_ok("OKAY"));
  EXPECT_FALSE(ht::serve::response_ok(""));
}

TEST(DispatcherTest, AnswersQueriesAndErrors) {
  ModelHandle handle;
  handle.publish(tiny_model());
  Dispatcher dispatcher(handle, QueryOptions{});

  EXPECT_EQ(dispatcher.handle_line("PING"), "OK pong");
  EXPECT_TRUE(ht::serve::response_ok(dispatcher.handle_line("INFO")));

  // SCORE through the wire == direct model query, bit-exactly.
  const std::vector<index_t> idx = {3, 4, 5};
  const std::string line = dispatcher.handle_line("SCORE 3 4 5");
  ASSERT_TRUE(ht::serve::response_ok(line)) << line;
  const double wire = std::strtod(line.c_str() + 3, nullptr);
  const double direct = tiny_model()->score(idx);
  EXPECT_EQ(std::memcmp(&wire, &direct, sizeof wire), 0);

  // Errors: bounds, arity, unknown commands, hooks not installed.
  EXPECT_FALSE(ht::serve::response_ok(dispatcher.handle_line("SCORE 99 0 0")));
  EXPECT_FALSE(ht::serve::response_ok(dispatcher.handle_line("SCORE 1 2")));
  EXPECT_FALSE(ht::serve::response_ok(dispatcher.handle_line("NONSENSE")));
  EXPECT_FALSE(ht::serve::response_ok(dispatcher.handle_line("RELOAD")));
  EXPECT_FALSE(ht::serve::response_ok(dispatcher.handle_line("TOPK 0 3")));
  EXPECT_TRUE(ht::serve::response_ok(dispatcher.handle_line("TOPK 0 3 1")));
}

TEST(DispatcherTest, NoModelPublishedIsAnError) {
  ModelHandle handle;
  Dispatcher dispatcher(handle, QueryOptions{});
  EXPECT_EQ(dispatcher.handle_line("PING"), "OK pong");
  EXPECT_FALSE(ht::serve::response_ok(dispatcher.handle_line("SCORE 0 0 0")));
}

TEST(DispatcherTest, RebuildsEngineOnEpochChange) {
  ModelHandle handle;
  handle.publish(tiny_model());
  Dispatcher dispatcher(handle, QueryOptions{});

  ASSERT_TRUE(ht::serve::response_ok(dispatcher.handle_line("SCORE 1 1 1")));
  const auto engine_before = dispatcher.engine();

  handle.publish(tiny_model());  // same model, new epoch
  ASSERT_TRUE(ht::serve::response_ok(dispatcher.handle_line("SCORE 1 1 1")));
  const auto engine_after = dispatcher.engine();
  EXPECT_NE(engine_before.get(), engine_after.get())
      << "dispatcher must rebuild the engine (cold cache) after a swap";

  // The old engine handle stays usable for in-flight requests.
  EXPECT_EQ(engine_before->score(std::vector<index_t>{1, 1, 1}),
            engine_after->score(std::vector<index_t>{1, 1, 1}));
}

#if HT_HAVE_SOCKETS
TEST(SocketServerTest, LoopbackEndToEnd) {
  ModelHandle handle;
  handle.publish(tiny_model());
  bool reloaded = false;
  DispatcherHooks hooks;
  hooks.reload = [&reloaded, &handle] {
    reloaded = true;
    handle.publish(tiny_model());
  };
  Dispatcher dispatcher(handle, QueryOptions{}, hooks);

  ht::serve::SocketServer server;
  server.listen_tcp(0);  // free port
  ASSERT_GT(server.port(), 0);
  server.serve_async(
      [&dispatcher](const std::string& line) {
        return dispatcher.handle_line(line);
      });

  const std::string target = "127.0.0.1:" + std::to_string(server.port());
  const auto responses = ht::serve::query_lines(
      target, {"PING", "SCORE 3 4 5", "SCOREB 3,4,5;1,1,1", "TOPK 3 2 1",
               "RELOAD", "STATS", "QUIT"});
  ASSERT_EQ(responses.size(), 7u);
  EXPECT_EQ(responses[0], "OK pong");
  for (const auto& r : responses) {
    EXPECT_TRUE(ht::serve::response_ok(r)) << r;
  }
  EXPECT_TRUE(reloaded);

  // SCORE over the socket == direct query, bit-exact through %.17g.
  const double wire = std::strtod(responses[1].c_str() + 3, nullptr);
  const double direct = tiny_model()->score(std::vector<index_t>{3, 4, 5});
  EXPECT_EQ(std::memcmp(&wire, &direct, sizeof wire), 0);

  // Several sequential clients; then shut the server down.
  for (int c = 0; c < 5; ++c) {
    EXPECT_EQ(ht::serve::query_line(target, "PING"), "OK pong");
  }
  server.shutdown();
  EXPECT_THROW(ht::serve::query_line(target, "PING"), ht::Error);
}
#endif  // HT_HAVE_SOCKETS

}  // namespace
